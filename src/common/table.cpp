#include "common/table.hpp"

#include "common/error.hpp"

namespace bbmg {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BBMG_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  BBMG_REQUIRE(row.size() == header_.size(),
               "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      out += row[c];
      out.append(widths[c] - row[c].size(), ' ');
    }
    out += " |\n";
  };

  std::string out;
  emit_row(header_, out);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += (c == 0) ? "|-" : "-|-";
    out.append(widths[c], '-');
  }
  out += "-|\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

}  // namespace bbmg
