// Small string utilities (GCC 12 has no <format>, so we provide the handful
// of helpers the trace serializer, reports and benches need).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace bbmg {

/// Split on a single character; empty fields preserved.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on runs of whitespace; no empty fields.
std::vector<std::string> split_ws(std::string_view s);

std::string_view trim(std::string_view s);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Fixed-point decimal rendering, e.g. format_double(1.23456, 3) == "1.235".
std::string format_double(double v, int decimals);

/// Thousands-free integer rendering (wrapper for symmetry with the above).
std::string format_u64(std::uint64_t v);

bool parse_u64(std::string_view s, std::uint64_t& out);
bool parse_double(std::string_view s, double& out);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// 1-based column of the first character of the Nth (0-based)
/// whitespace-separated token of `line`; 1 when the token does not exist.
/// Both trace loaders use this to point their `line:col` diagnostics at
/// the offending token rather than just the offending line.
std::size_t token_col(std::string_view line, std::size_t token_index);

}  // namespace bbmg
