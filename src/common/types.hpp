// Core vocabulary types shared by every bbmodelgen library.
//
// The paper's universe is a fixed, known set of tasks T executed in periods;
// everything else (messages, hypotheses, traces) is expressed relative to
// task indices.  We use small strong types rather than raw integers so that
// a task index can never be silently confused with a message occurrence
// index or an ECU index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace bbmg {

/// Simulated/trace time in nanoseconds since the start of the trace.
using TimeNs = std::uint64_t;

constexpr TimeNs kTimeNsPerUs = 1000ull;
constexpr TimeNs kTimeNsPerMs = 1000ull * 1000ull;
constexpr TimeNs kTimeNsPerSec = 1000ull * 1000ull * 1000ull;

namespace detail {

/// CRTP strong index. Tag makes each instantiation a distinct type.
template <class Tag>
struct StrongIndex {
  std::uint32_t value{0};

  constexpr StrongIndex() = default;
  constexpr explicit StrongIndex(std::uint32_t v) : value(v) {}
  constexpr explicit StrongIndex(std::size_t v)
      : value(static_cast<std::uint32_t>(v)) {}

  [[nodiscard]] constexpr std::size_t index() const { return value; }

  friend constexpr bool operator==(StrongIndex a, StrongIndex b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(StrongIndex a, StrongIndex b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(StrongIndex a, StrongIndex b) {
    return a.value < b.value;
  }
  friend constexpr bool operator<=(StrongIndex a, StrongIndex b) {
    return a.value <= b.value;
  }
  friend constexpr bool operator>(StrongIndex a, StrongIndex b) {
    return a.value > b.value;
  }
  friend constexpr bool operator>=(StrongIndex a, StrongIndex b) {
    return a.value >= b.value;
  }
};

}  // namespace detail

/// Index of a task in the system's task set T.
struct TaskTag {};
using TaskId = detail::StrongIndex<TaskTag>;

/// Index of a message *occurrence* within one period of a trace.
struct MsgOccTag {};
using MsgOccId = detail::StrongIndex<MsgOccTag>;

/// Index of an ECU (processing node) in the simulated platform.
struct EcuTag {};
using EcuId = detail::StrongIndex<EcuTag>;

/// CAN identifier (11-bit base format); doubles as bus arbitration priority
/// (numerically lower id wins arbitration).
using CanId = std::uint32_t;

/// OSEK-style static task priority; numerically higher value preempts lower.
using TaskPriority = std::int32_t;

}  // namespace bbmg

namespace std {
template <class Tag>
struct hash<bbmg::detail::StrongIndex<Tag>> {
  size_t operator()(bbmg::detail::StrongIndex<Tag> id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
}  // namespace std
