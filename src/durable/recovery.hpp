// Startup recovery: scan the data directory, restore every session from
// its newest valid snapshot, replay the WAL tail, and hand back live
// learners plus re-attached SessionStores ready to keep appending.
//
// The robustness contract (ISSUE acceptance criterion): recovery NEVER
// aborts on damaged state.  A snapshot that fails its CRC or decode is
// quarantined (moved to `<data_dir>/quarantine/`) and the previous
// snapshot is tried; a WAL with a corrupt header, a session-id mismatch,
// or a base past the best snapshot (an unreplayable gap) is quarantined
// and the session restarts from the snapshot alone; a torn WAL tail is
// truncated at the last good record and the log is reused.  Every such
// decision is recorded as a human-readable diagnostic line so an operator
// can audit what a crashy disk cost them.
//
// Determinism: the learner is a pure function of its applied-period
// prefix and the sanitizer is stateless, so `snapshot state + replay of
// records snap_seq+1..last` reproduces the pre-crash learner byte for
// byte (tests/durable/crash_recovery_test.cpp proves this against an
// uninterrupted baseline).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durable/store.hpp"

namespace bbmg::durable {

struct RecoveredSession {
  SessionMeta meta;
  /// Applied-period high-water mark after replay.
  std::uint64_t seq{0};
  StreamingTraceStats::Summary stats;
  RobustOnlineLearner learner;
  /// Store re-attached to the session directory, WAL open for appending.
  std::unique_ptr<SessionStore> store;
  /// Periods replayed from the WAL tail for this session.
  std::uint64_t replayed{0};
};

struct RecoveryReport {
  std::vector<RecoveredSession> sessions;
  /// Destination paths of files moved to quarantine.
  std::vector<std::string> quarantined_files;
  /// Human-readable account of every non-clean decision.
  std::vector<std::string> diagnostics;
  std::uint64_t replayed_periods{0};
  std::uint64_t torn_tails{0};

  [[nodiscard]] std::string summary_line() const;
};

/// Scan `config.dir` and recover every session.  Creates the directory if
/// missing (fresh start).  Throws only on environmental failures (e.g.
/// the data dir cannot be created) — damaged session state is quarantined,
/// never fatal.
[[nodiscard]] RecoveryReport recover_all(const DurableConfig& config);

/// Move `path` into `<data_dir>/quarantine/`, uniquified if needed.
/// Returns the destination path ("" if the move itself failed — the file
/// is then left in place and serving continues without it).
std::string quarantine_file(const std::string& data_dir,
                            const std::string& path);

}  // namespace bbmg::durable
