// Per-session write-ahead log of accepted period batches.  The learner is
// order-deterministic — its state after N applied periods is a pure
// function of the applied-period prefix — so durability reduces to never
// losing that prefix: every period is appended to the WAL *before* it is
// fed to the learner, and recovery replays the tail past the newest
// snapshot to land on byte-identical state.
//
// File layout (little-endian):
//
//   header:  magic u32 'BBWL' | version u16 | session u32 | base_seq u64
//   record:  seq u64 | len u32 | crc32(payload) u32 | payload
//   payload: nevents u32 | nevents x event (trace/binary_codec framing)
//
// `base_seq` is the applied-period count already captured by the snapshot
// the log extends; records carry seq = base_seq+1, base_seq+2, ... in
// order.  Appends go through a single raw write(2) per record, so a
// process kill (SIGKILL) can only tear the *last* record — scan_wal
// detects the torn tail via length/CRC/sequence checks and reports the
// last good byte offset so recovery can truncate and keep appending.
// fsync is group-committed (one per `fsync_every` appends) and forced by
// flush(); only a machine crash can lose the unsynced tail, a process
// crash cannot.
//
// WalWriter is not thread-safe; SessionStore serializes access.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "trace/event.hpp"

namespace bbmg::durable {

inline constexpr std::uint32_t kWalMagic = 0x4c574242u;  // "BBWL"
inline constexpr std::uint16_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 4 + 2 + 4 + 8;
/// Per-record payload sanity cap, aligned with the serve frame cap.
inline constexpr std::size_t kMaxWalRecordPayload = 64u * 1024 * 1024;

/// Canonical WAL basename inside a session directory.
inline constexpr const char* kWalFilename = "wal.bbwl";

// -- writing ---------------------------------------------------------------

class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;

  /// Create (or truncate) the log at `path` and write a fresh header.
  /// The header is fsynced immediately so recovery never sees a WAL with
  /// a torn header unless the crash raced file creation itself.
  void create(const std::string& path, std::uint32_t session,
              std::uint64_t base_seq, std::size_t fsync_every);

  /// Reopen an existing, already-validated log for appending.  `last_seq`
  /// is the sequence of its final good record (== base_seq when empty),
  /// as reported by scan_wal after any torn-tail truncation.
  void open(const std::string& path, std::uint32_t session,
            std::uint64_t base_seq, std::uint64_t last_seq,
            std::size_t fsync_every);

  /// Append one accepted period.  `seq` must be last_seq()+1 (the caller
  /// assigns sequence numbers at learner-apply time, which is what makes
  /// replay deterministic).  One write(2) per record; group-commit fsync.
  void append(std::uint64_t seq, const std::vector<Event>& events);

  /// fsync any unsynced appends.  Returns the durable high-water mark
  /// (last_seq after the sync) — the honest value a Resume reply reports.
  std::uint64_t flush();

  /// Restart the log at a new base (after a snapshot at `base_seq` has
  /// been durably written): truncate and write a fresh header.  Entries
  /// up to base_seq are now covered by the snapshot and can be dropped.
  void rotate(std::uint64_t base_seq);

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }
  [[nodiscard]] std::uint64_t base_seq() const { return base_seq_; }

  void close();

 private:
  void write_header();

  int fd_{-1};
  std::string path_;
  std::uint32_t session_{0};
  std::uint64_t base_seq_{0};
  std::uint64_t last_seq_{0};
  std::size_t fsync_every_{32};
  std::size_t unsynced_{0};
};

// -- scanning (recovery) ---------------------------------------------------

struct WalRecord {
  std::uint64_t seq{0};
  std::vector<Event> events;
};

struct WalScan {
  std::uint32_t session{0};
  std::uint64_t base_seq{0};
  /// Good records, contiguous from base_seq+1.
  std::vector<WalRecord> records;
  /// True if trailing bytes after the last good record were not a valid
  /// record (torn tail from a crash mid-append, or tail corruption).
  bool torn_tail{false};
  /// Byte offset of the end of the last good record (>= header size);
  /// recovery truncates the file here before reopening for append.
  std::uint64_t valid_bytes{0};
};

/// Scan a WAL image.  Throws bbmg::Error if the *header* is invalid (the
/// whole file is then quarantined); a bad record merely ends the scan with
/// torn_tail set — everything before it is still good.
[[nodiscard]] WalScan scan_wal(const std::uint8_t* data, std::size_t size);
[[nodiscard]] WalScan scan_wal(const std::vector<std::uint8_t>& bytes);

/// The validated fixed-size header of a WAL file.
struct WalHeader {
  std::uint32_t session{0};
  std::uint64_t base_seq{0};
};

/// Read and validate just the header of the WAL at `path`.  Throws
/// bbmg::Error on I/O failure or an invalid header (magic/version/size) —
/// the same condemnations as scan_wal, available without touching the
/// records, so recovery can reject a mismatched log before replaying it.
[[nodiscard]] WalHeader read_wal_header(const std::string& path);

/// Result of a streaming on-disk scan: scan_wal's verdicts without the
/// materialized records.
struct WalFileScan {
  std::uint32_t session{0};
  std::uint64_t base_seq{0};
  /// Sequence of the last good record (== base_seq when there is none).
  std::uint64_t last_seq{0};
  /// Number of good records handed to the callback.
  std::uint64_t records{0};
  bool torn_tail{false};
  std::uint64_t valid_bytes{0};
};

/// Stream-scan the WAL at `path`: records are read one at a time through
/// a reused buffer and handed to `on_record` in order, so an arbitrarily
/// long (but valid) log replays without ever being held in memory whole —
/// a WAL is legitimately up to snapshot_every x kMaxWalRecordPayload
/// bytes, far past any sane single-read cap.  Header failures throw like
/// scan_wal; a bad record ends the scan with torn_tail set after every
/// earlier record was already delivered.
WalFileScan scan_wal_file(
    const std::string& path,
    const std::function<void(WalRecord&&)>& on_record);

/// ftruncate `path` to `size` bytes (torn-tail repair).  Throws on error.
void truncate_file(const std::string& path, std::uint64_t size);

}  // namespace bbmg::durable
