#include "durable/checksum.hpp"

#include <array>

namespace bbmg::durable {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace bbmg::durable
