#include "durable/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "durable/checksum.hpp"
#include "durable/durable_metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "trace/binary_codec.hpp"

namespace bbmg::durable {

namespace {

void write_fd_all(int fd, const std::uint8_t* data, std::size_t size,
                  const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("durable: WAL write failed for " + path + ": " +
            std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Read up to `size` bytes; short only at EOF.  Throws on I/O errors.
std::size_t read_fd_upto(int fd, std::uint8_t* data, std::size_t size,
                         const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::read(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("durable: WAL read failed for " + path + ": " +
            std::strerror(errno));
    }
    if (n == 0) break;
    off += static_cast<std::size_t>(n);
  }
  return off;
}

struct FdCloser {
  int fd{-1};
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

int open_wal_readonly(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    raise("durable: cannot open WAL " + path + ": " + std::strerror(errno));
  }
  return fd;
}

WalHeader parse_wal_header(const std::uint8_t* data, std::size_t size,
                           const std::string& path) {
  BBMG_REQUIRE(size >= kWalHeaderSize,
               "durable: WAL " + path + " shorter than its header");
  ByteReader header(data, size);
  BBMG_REQUIRE(header.read_u32() == kWalMagic,
               "durable: not a WAL file (bad magic)");
  const std::uint16_t version = header.read_u16();
  BBMG_REQUIRE(version == kWalVersion,
               "durable: unsupported WAL version " + std::to_string(version));
  WalHeader h;
  h.session = header.read_u32();
  h.base_seq = header.read_u64();
  return h;
}

/// Decode one record payload (nevents + events).  Returns false on any
/// malformation — the caller treats it as a torn tail.
bool decode_wal_payload(const std::uint8_t* payload, std::size_t len,
                        WalRecord& record) {
  try {
    ByteReader pr(payload, len);
    const std::uint32_t nevents = pr.read_u32();
    if (nevents > kMaxEventsPerPeriod) return false;
    record.events.reserve(nevents);
    for (std::uint32_t i = 0; i < nevents; ++i) {
      record.events.push_back(pr.read_event());
    }
    return pr.done();
  } catch (const Error&) {
    return false;  // undecodable payload despite a good CRC: treat as torn
  }
}

}  // namespace

// -- WalWriter -------------------------------------------------------------

WalWriter::~WalWriter() { close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept { *this = std::move(other); }

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    session_ = other.session_;
    base_seq_ = other.base_seq_;
    last_seq_ = other.last_seq_;
    fsync_every_ = other.fsync_every_;
    unsynced_ = std::exchange(other.unsynced_, 0);
  }
  return *this;
}

void WalWriter::close() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
    unsynced_ = 0;
  }
}

void WalWriter::write_header() {
  std::vector<std::uint8_t> header;
  header.reserve(kWalHeaderSize);
  append_u32(header, kWalMagic);
  append_u16(header, kWalVersion);
  append_u32(header, session_);
  append_u64(header, base_seq_);
  write_fd_all(fd_, header.data(), header.size(), path_);
  if (::fsync(fd_) != 0) {
    raise("durable: fsync failed for " + path_ + ": " + std::strerror(errno));
  }
  DurableMetrics::get().wal_fsyncs.inc(1);
}

void WalWriter::create(const std::string& path, std::uint32_t session,
                       std::uint64_t base_seq, std::size_t fsync_every) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    raise("durable: cannot create WAL " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  session_ = session;
  base_seq_ = base_seq;
  last_seq_ = base_seq;
  fsync_every_ = fsync_every == 0 ? 1 : fsync_every;
  unsynced_ = 0;
  write_header();
}

void WalWriter::open(const std::string& path, std::uint32_t session,
                     std::uint64_t base_seq, std::uint64_t last_seq,
                     std::size_t fsync_every) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) {
    raise("durable: cannot reopen WAL " + path + ": " + std::strerror(errno));
  }
  path_ = path;
  session_ = session;
  base_seq_ = base_seq;
  last_seq_ = last_seq;
  fsync_every_ = fsync_every == 0 ? 1 : fsync_every;
  unsynced_ = 0;
}

void WalWriter::append(std::uint64_t seq, const std::vector<Event>& events) {
  BBMG_ASSERT(is_open(), "durable: append on a closed WAL");
  BBMG_REQUIRE(seq == last_seq_ + 1,
               "durable: WAL append out of sequence (got " +
                   std::to_string(seq) + ", expected " +
                   std::to_string(last_seq_ + 1) + ")");
  const std::uint64_t t0 = obs::now_ns();

  std::vector<std::uint8_t> payload;
  payload.reserve(4 + events.size() * kEncodedEventSize);
  append_u32(payload, static_cast<std::uint32_t>(events.size()));
  for (const Event& e : events) append_event(payload, e);
  BBMG_REQUIRE(payload.size() <= kMaxWalRecordPayload,
               "durable: WAL record exceeds the payload cap");

  std::vector<std::uint8_t> record;
  record.reserve(16 + payload.size());
  append_u64(record, seq);
  append_u32(record, static_cast<std::uint32_t>(payload.size()));
  append_u32(record, crc32(payload));
  record.insert(record.end(), payload.begin(), payload.end());

  // One write(2) per record: a process kill can only tear the final
  // record, which scan_wal detects and truncates.
  write_fd_all(fd_, record.data(), record.size(), path_);
  last_seq_ = seq;

  auto& m = DurableMetrics::get();
  m.wal_appends.inc(1);
  m.wal_bytes.inc(record.size());
  // Stage spans attach to whatever trace the calling worker scoped; the
  // fsync span only exists on the periods that pay the group commit.
  obs::record_current_stage("server.wal_append", t0, obs::now_ns());
  if (++unsynced_ >= fsync_every_) {
    const std::uint64_t fsync_start = obs::now_ns();
    if (::fsync(fd_) != 0) {
      raise("durable: fsync failed for " + path_ + ": " +
            std::strerror(errno));
    }
    obs::record_current_stage("server.fsync", fsync_start, obs::now_ns());
    m.wal_fsyncs.inc(1);
    unsynced_ = 0;
  }
  m.wal_append_us.observe((obs::now_ns() - t0) / 1000);
}

std::uint64_t WalWriter::flush() {
  BBMG_ASSERT(is_open(), "durable: flush on a closed WAL");
  if (unsynced_ > 0) {
    if (::fsync(fd_) != 0) {
      raise("durable: fsync failed for " + path_ + ": " +
            std::strerror(errno));
    }
    DurableMetrics::get().wal_fsyncs.inc(1);
    unsynced_ = 0;
  }
  return last_seq_;
}

void WalWriter::rotate(std::uint64_t base_seq) {
  BBMG_ASSERT(is_open(), "durable: rotate on a closed WAL");
  BBMG_REQUIRE(base_seq >= base_seq_,
               "durable: WAL rotation must not move the base backwards");
  if (::ftruncate(fd_, 0) != 0) {
    raise("durable: ftruncate failed for " + path_ + ": " +
          std::strerror(errno));
  }
  if (::lseek(fd_, 0, SEEK_SET) < 0) {
    raise("durable: lseek failed for " + path_ + ": " + std::strerror(errno));
  }
  base_seq_ = base_seq;
  last_seq_ = base_seq;
  unsynced_ = 0;
  write_header();
}

// -- scanning --------------------------------------------------------------

WalScan scan_wal(const std::uint8_t* data, std::size_t size) {
  // Header corruption condemns the whole file (throws -> quarantine).
  const WalHeader header = parse_wal_header(data, size, "<memory>");
  WalScan scan;
  scan.session = header.session;
  scan.base_seq = header.base_seq;
  scan.valid_bytes = kWalHeaderSize;

  std::uint64_t expect_seq = scan.base_seq + 1;
  std::size_t pos = kWalHeaderSize;
  while (pos < size) {
    // Record framing checks; any failure here is a torn/corrupt tail,
    // not a fatal file error — everything before `pos` stays good.
    if (size - pos < 16) break;
    ByteReader r(data + pos, size - pos);
    const std::uint64_t seq = r.read_u64();
    const std::uint32_t len = r.read_u32();
    const std::uint32_t stored_crc = r.read_u32();
    if (seq != expect_seq) break;
    if (len > kMaxWalRecordPayload) break;
    if (size - pos - 16 < len) break;
    const std::uint8_t* payload = data + pos + 16;
    if (crc32(payload, len) != stored_crc) break;

    WalRecord record;
    record.seq = seq;
    if (!decode_wal_payload(payload, len, record)) break;
    scan.records.push_back(std::move(record));
    pos += 16 + len;
    scan.valid_bytes = pos;
    ++expect_seq;
  }
  scan.torn_tail = scan.valid_bytes < size;
  return scan;
}

WalScan scan_wal(const std::vector<std::uint8_t>& bytes) {
  return scan_wal(bytes.data(), bytes.size());
}

WalHeader read_wal_header(const std::string& path) {
  FdCloser fd{open_wal_readonly(path)};
  std::uint8_t buf[kWalHeaderSize];
  const std::size_t got = read_fd_upto(fd.fd, buf, kWalHeaderSize, path);
  return parse_wal_header(buf, got, path);
}

WalFileScan scan_wal_file(
    const std::string& path,
    const std::function<void(WalRecord&&)>& on_record) {
  FdCloser fd{open_wal_readonly(path)};

  std::uint8_t header_buf[kWalHeaderSize];
  const std::size_t header_got =
      read_fd_upto(fd.fd, header_buf, kWalHeaderSize, path);
  const WalHeader header = parse_wal_header(header_buf, header_got, path);

  WalFileScan scan;
  scan.session = header.session;
  scan.base_seq = header.base_seq;
  scan.last_seq = header.base_seq;
  scan.valid_bytes = kWalHeaderSize;

  std::uint64_t expect_seq = scan.base_seq + 1;
  std::vector<std::uint8_t> payload;
  for (;;) {
    std::uint8_t rec_header[16];
    const std::size_t got = read_fd_upto(fd.fd, rec_header, 16, path);
    if (got == 0) break;  // clean end of log
    if (got < 16) {
      scan.torn_tail = true;
      break;
    }
    ByteReader r(rec_header, 16);
    const std::uint64_t seq = r.read_u64();
    const std::uint32_t len = r.read_u32();
    const std::uint32_t stored_crc = r.read_u32();
    if (seq != expect_seq || len > kMaxWalRecordPayload) {
      scan.torn_tail = true;
      break;
    }
    payload.resize(len);
    if (read_fd_upto(fd.fd, payload.data(), len, path) < len) {
      scan.torn_tail = true;
      break;
    }
    if (crc32(payload.data(), len) != stored_crc) {
      scan.torn_tail = true;
      break;
    }
    WalRecord record;
    record.seq = seq;
    if (!decode_wal_payload(payload.data(), len, record)) {
      scan.torn_tail = true;
      break;
    }
    on_record(std::move(record));
    scan.valid_bytes += 16 + len;
    scan.last_seq = seq;
    ++scan.records;
    ++expect_seq;
  }
  return scan;
}

void truncate_file(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    raise("durable: truncate failed for " + path + ": " +
          std::strerror(errno));
  }
}

}  // namespace bbmg::durable
