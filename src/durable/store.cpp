#include "durable/store.hpp"

#include <algorithm>
#include <filesystem>

#include "common/error.hpp"
#include "durable/durable_metrics.hpp"
#include "obs/span.hpp"

namespace bbmg::durable {

namespace fs = std::filesystem;

std::string session_dirname(std::uint32_t session) {
  return "session-" + std::to_string(session);
}

SessionStore::SessionStore(const DurableConfig& config, SessionMeta meta,
                           std::string dir)
    : config_(config), meta_(std::move(meta)), dir_(std::move(dir)) {}

std::unique_ptr<SessionStore> SessionStore::create(
    const DurableConfig& config, SessionMeta meta,
    const RobustOnlineLearner& learner,
    const StreamingTraceStats::Summary& stats) {
  BBMG_REQUIRE(config.enabled(), "durable: create() with durability off");
  const std::string dir =
      (fs::path(config.dir) / session_dirname(meta.session)).string();
  std::error_code ec;
  fs::create_directories(dir, ec);
  BBMG_REQUIRE(!ec, "durable: cannot create session directory " + dir + ": " +
                        ec.message());
  auto store = std::unique_ptr<SessionStore>(
      new SessionStore(config, std::move(meta), dir));
  // Seq-0 snapshot first, so even a session killed before its first
  // period recovers with the right metadata and an empty learner.
  store->write_snapshot(0, learner, stats);
  return store;
}

std::unique_ptr<SessionStore> SessionStore::attach(
    const DurableConfig& config, SessionMeta meta, std::uint64_t snapshot_seq,
    std::uint64_t wal_base_seq, std::uint64_t last_seq, bool reuse_wal) {
  BBMG_REQUIRE(config.enabled(), "durable: attach() with durability off");
  const std::string dir =
      (fs::path(config.dir) / session_dirname(meta.session)).string();
  const std::uint32_t session = meta.session;
  auto store = std::unique_ptr<SessionStore>(
      new SessionStore(config, std::move(meta), dir));
  const std::string wal_path = (fs::path(dir) / kWalFilename).string();
  if (reuse_wal && fs::exists(wal_path)) {
    store->wal_.open(wal_path, session, wal_base_seq, last_seq,
                     config.fsync_every);
  } else {
    // O_TRUNC create: whatever recovery condemned (and possibly failed to
    // move aside) is destroyed here rather than appended after.
    store->wal_.create(wal_path, session, last_seq, config.fsync_every);
  }
  // The newest snapshot recovery accepted is the compaction base.
  store->last_snapshot_seq_ = snapshot_seq;
  return store;
}

void SessionStore::append_period(std::uint64_t seq,
                                 const std::vector<Event>& events) {
  std::lock_guard<std::mutex> lock(mu_);
  wal_.append(seq, events);
}

std::uint64_t SessionStore::flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.flush();
}

bool SessionStore::should_compact(std::uint64_t seq) const {
  if (config_.snapshot_every == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return seq >= last_snapshot_seq_ + config_.snapshot_every;
}

void SessionStore::write_snapshot(std::uint64_t seq,
                                  const RobustOnlineLearner& learner,
                                  const StreamingTraceStats::Summary& stats) {
  const std::uint64_t t0 = obs::now_ns();
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(meta_, seq, stats, learner);

  std::lock_guard<std::mutex> lock(mu_);
  const std::string path =
      (fs::path(dir_) / snapshot_filename(seq)).string();
  write_file_atomic(path, bytes);
  last_snapshot_seq_ = seq;
  prune_snapshots_locked();
  // Rotate only after the snapshot is durably on disk: a crash between
  // the two leaves a longer-than-needed WAL, never a gap.
  if (wal_.is_open()) {
    wal_.rotate(seq);
  } else {
    const std::string wal_path = (fs::path(dir_) / kWalFilename).string();
    wal_.create(wal_path, meta_.session, seq, config_.fsync_every);
  }

  auto& m = DurableMetrics::get();
  m.snapshots_written.inc(1);
  m.snapshot_bytes.inc(bytes.size());
  m.snapshot_write_us.observe((obs::now_ns() - t0) / 1000);
}

void SessionStore::prune_snapshots_locked() {
  std::vector<std::pair<std::uint64_t, fs::path>> snaps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto seq = parse_snapshot_filename(entry.path().filename().string());
    if (seq) snaps.emplace_back(*seq, entry.path());
  }
  if (snaps.size() <= kSnapshotsToKeep) return;
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t i = kSnapshotsToKeep; i < snaps.size(); ++i) {
    fs::remove(snaps[i].second, ec);  // best-effort; stale files are benign
  }
}

}  // namespace bbmg::durable
