// Durable session snapshots — the compaction points of the crash-safety
// story (DESIGN.md "Durability & recovery").  A snapshot file captures
// everything needed to reconstruct a serving session's learner at one
// applied-period sequence number:
//
//   * the session metadata (id, task-name table, RobustConfig, publish
//     interval) so recovery can rebuild the session without the client;
//   * the applied-period high-water mark `seq`;
//   * the StreamingTraceStats summary;
//   * RobustOnlineLearner::encode_state — the full learner state.
//
// File layout (little-endian, BBTC framing conventions):
//
//   magic u32 'BBSN' | version u16 | payload_len u32 | payload |
//   crc32(payload) u32
//
// Writes are atomic: encode to `<name>.tmp`, write + fsync, rename over
// the final name, fsync the directory.  A crash at any point leaves
// either the old file set or the new one — never a half-written snapshot
// that recovery could mistake for truth (the CRC catches torn renames on
// filesystems without atomic rename anyway).  Decoding is strict like the
// trace codec: wrong magic/version/CRC or malformed payload throws
// bbmg::Error; recovery.cpp turns that into quarantine, not a crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "robust/robust_online_learner.hpp"
#include "trace/stats.hpp"

namespace bbmg::durable {

inline constexpr std::uint32_t kSnapshotMagic = 0x4e534242u;  // "BBSN"
inline constexpr std::uint16_t kSnapshotVersion = 1;
/// Sanity cap on the declared payload length (a corrupt header must not
/// drive a multi-gigabyte allocation).
inline constexpr std::size_t kMaxSnapshotPayload = 256u * 1024 * 1024;

/// Everything recovery needs to rebuild a session besides the learner
/// state itself.  This is durable's own type, not serve's SessionConfig,
/// so the dependency points serve -> durable and not back.
struct SessionMeta {
  std::uint32_t session{0};
  std::vector<std::string> task_names;
  RobustConfig config;
  /// Serve-layer publish interval (periods between snapshot publications);
  /// 0 = serve default.  Carried so a recovered session behaves like the
  /// original without the client re-sending Hello/OpenSession.
  std::uint32_t snapshot_interval{0};
};

/// A decoded snapshot: session metadata, the applied-period sequence
/// number it captures, streaming-stats totals, and the restored learner.
struct LoadedSnapshot {
  SessionMeta meta;
  std::uint64_t seq{0};
  StreamingTraceStats::Summary stats;
  RobustOnlineLearner learner;
};

// -- codec -----------------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const SessionMeta& meta, std::uint64_t seq,
    const StreamingTraceStats::Summary& stats,
    const RobustOnlineLearner& learner);

/// Strict decode of a whole snapshot file image; throws bbmg::Error on any
/// malformation (magic, version, length, CRC, payload contents).
[[nodiscard]] LoadedSnapshot decode_snapshot(const std::uint8_t* data,
                                             std::size_t size);
[[nodiscard]] LoadedSnapshot decode_snapshot(
    const std::vector<std::uint8_t>& bytes);

// -- files -----------------------------------------------------------------

/// Canonical basename for a snapshot at `seq`: "snap-<seq>.bbsn".
[[nodiscard]] std::string snapshot_filename(std::uint64_t seq);

/// Parse the sequence number out of a snapshot basename; nullopt if the
/// name is not of the canonical form.
[[nodiscard]] std::optional<std::uint64_t> parse_snapshot_filename(
    const std::string& name);

/// Atomically write `bytes` to `path` (tmp + fsync + rename + dir fsync).
/// Throws bbmg::Error on any I/O failure.
void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes);

/// Read a whole file into memory; throws bbmg::Error on I/O failure or if
/// the file exceeds `max_size`.
[[nodiscard]] std::vector<std::uint8_t> read_file_bytes(
    const std::string& path, std::size_t max_size = kMaxSnapshotPayload * 2);

/// Load + decode one snapshot file.  Throws bbmg::Error on I/O failure or
/// corruption (callers quarantine on that).
[[nodiscard]] LoadedSnapshot load_snapshot_file(const std::string& path);

// -- meta codec (shared with the WAL header-less records) ------------------

void append_session_meta(std::vector<std::uint8_t>& out,
                         const SessionMeta& meta);
[[nodiscard]] SessionMeta read_session_meta(ByteReader& r);

}  // namespace bbmg::durable
