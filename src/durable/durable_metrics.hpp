// Process-wide durability metrics (DESIGN.md "Durability & recovery"):
// WAL append/fsync accounting, snapshot write cost, and the recovery
// pass's outcome counters (sessions restored, WAL periods replayed, files
// quarantined, torn tails truncated).  Resolved once behind a
// function-local static like serve/serve_metrics.hpp.
#pragma once

#include "obs/metrics.hpp"

namespace bbmg::durable {

struct DurableMetrics {
  /// WAL records appended (one per applied period on a durable session).
  obs::Counter& wal_appends;
  /// Bytes appended to WALs (records incl. framing).
  obs::Counter& wal_bytes;
  /// fsync calls issued on WAL files (group commit: one per N appends).
  obs::Counter& wal_fsyncs;
  /// Snapshot files written (periodic compaction + shutdown checkpoints).
  obs::Counter& snapshots_written;
  /// Bytes written into snapshot files.
  obs::Counter& snapshot_bytes;
  /// Sessions restored by a recovery pass.
  obs::Counter& recovered_sessions;
  /// WAL tail periods replayed into restored learners.
  obs::Counter& replayed_periods;
  /// Corrupt snapshot/WAL files moved to the quarantine directory.
  obs::Counter& quarantined_files;
  /// WAL files whose torn tail was truncated at the last good record.
  obs::Counter& torn_wal_tails;
  /// Wall time of one WAL append (write syscall + optional fsync).
  obs::Histogram& wal_append_us;
  /// Wall time of one snapshot write (encode + write + fsync + rename).
  obs::Histogram& snapshot_write_us;
  /// Wall time of one full recovery pass.
  obs::Histogram& recovery_us;

  static DurableMetrics& get() {
    static DurableMetrics m = make();
    return m;
  }

 private:
  static DurableMetrics make() {
    auto& r = obs::MetricsRegistry::instance();
    return DurableMetrics{
        r.counter("bbmg_durable_wal_appends_total"),
        r.counter("bbmg_durable_wal_bytes_total"),
        r.counter("bbmg_durable_wal_fsyncs_total"),
        r.counter("bbmg_durable_snapshots_written_total"),
        r.counter("bbmg_durable_snapshot_bytes_total"),
        r.counter("bbmg_durable_recovered_sessions_total"),
        r.counter("bbmg_durable_replayed_periods_total"),
        r.counter("bbmg_durable_quarantined_files_total"),
        r.counter("bbmg_durable_torn_wal_tails_total"),
        r.histogram("bbmg_durable_wal_append_us",
                    obs::default_latency_buckets_us()),
        r.histogram("bbmg_durable_snapshot_write_us",
                    obs::default_latency_buckets_us()),
        r.histogram("bbmg_durable_recovery_us",
                    obs::default_latency_buckets_us()),
    };
  }
};

}  // namespace bbmg::durable
