#include "durable/snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/error.hpp"
#include "durable/checksum.hpp"
#include "trace/binary_codec.hpp"

namespace bbmg::durable {

namespace {

void append_f64(std::vector<std::uint8_t>& out, double v) {
  append_u64(out, std::bit_cast<std::uint64_t>(v));
}

double read_f64(ByteReader& r) {
  return std::bit_cast<double>(r.read_u64());
}

/// write(2) until done, retrying EINTR; throws on error.
void write_fd_all(int fd, const std::uint8_t* data, std::size_t size,
                  const std::string& path) {
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, data + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise("durable: write failed for " + path + ": " +
            std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

void fsync_or_raise(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    raise("durable: fsync failed for " + what + ": " + std::strerror(errno));
  }
}

/// fsync the directory containing `path` so a rename is durable.
void fsync_parent_dir(const std::string& path) {
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    raise("durable: cannot open directory " + dir + ": " +
          std::strerror(errno));
  }
  fsync_or_raise(fd, dir);
  ::close(fd);
}

}  // namespace

// -- meta codec ------------------------------------------------------------

void append_session_meta(std::vector<std::uint8_t>& out,
                         const SessionMeta& meta) {
  append_u32(out, meta.session);
  append_task_names(out, meta.task_names);
  const RobustConfig& c = meta.config;
  append_u32(out, static_cast<std::uint32_t>(c.online.bound));
  append_u8(out, static_cast<std::uint8_t>(c.sanitize.policy));
  append_u64(out, static_cast<std::uint64_t>(c.sanitize.clock_skew_tolerance));
  append_u64(out, static_cast<std::uint64_t>(c.sanitize.period_length));
  append_f64(out, c.degraded_threshold);
  append_f64(out, c.failed_threshold);
  append_u64(out, static_cast<std::uint64_t>(c.min_periods_for_health));
  append_u32(out, meta.snapshot_interval);
}

SessionMeta read_session_meta(ByteReader& r) {
  SessionMeta meta;
  meta.session = r.read_u32();
  meta.task_names = read_task_names(r);
  RobustConfig& c = meta.config;
  const std::uint32_t bound = r.read_u32();
  BBMG_REQUIRE(bound >= 1 && bound <= (1u << 20),
               "durable: snapshot meta has implausible learner bound");
  c.online.bound = bound;
  const std::uint8_t policy = r.read_u8();
  BBMG_REQUIRE(policy <= static_cast<std::uint8_t>(SanitizePolicy::Quarantine),
               "durable: snapshot meta has unknown sanitize policy");
  c.sanitize.policy = static_cast<SanitizePolicy>(policy);
  c.sanitize.clock_skew_tolerance = static_cast<TimeNs>(r.read_u64());
  c.sanitize.period_length = static_cast<TimeNs>(r.read_u64());
  c.degraded_threshold = read_f64(r);
  c.failed_threshold = read_f64(r);
  c.min_periods_for_health = static_cast<std::size_t>(r.read_u64());
  meta.snapshot_interval = r.read_u32();
  return meta;
}

// -- codec -----------------------------------------------------------------

std::vector<std::uint8_t> encode_snapshot(
    const SessionMeta& meta, std::uint64_t seq,
    const StreamingTraceStats::Summary& stats,
    const RobustOnlineLearner& learner) {
  std::vector<std::uint8_t> payload;
  append_session_meta(payload, meta);
  append_u64(payload, seq);
  append_u64(payload, stats.periods);
  append_u64(payload, stats.events);
  append_u64(payload, stats.task_events);
  append_u64(payload, stats.message_events);
  append_u64(payload, stats.max_makespan);
  learner.encode_state(payload);
  BBMG_REQUIRE(payload.size() <= kMaxSnapshotPayload,
               "durable: snapshot payload exceeds the sanity cap");

  std::vector<std::uint8_t> out;
  out.reserve(payload.size() + 14);
  append_u32(out, kSnapshotMagic);
  append_u16(out, kSnapshotVersion);
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  append_u32(out, crc32(payload));
  return out;
}

LoadedSnapshot decode_snapshot(const std::uint8_t* data, std::size_t size) {
  ByteReader header(data, size);
  BBMG_REQUIRE(header.read_u32() == kSnapshotMagic,
               "durable: not a snapshot file (bad magic)");
  const std::uint16_t version = header.read_u16();
  BBMG_REQUIRE(version == kSnapshotVersion,
               "durable: unsupported snapshot version " +
                   std::to_string(version));
  const std::uint32_t payload_len = header.read_u32();
  BBMG_REQUIRE(payload_len <= kMaxSnapshotPayload,
               "durable: snapshot payload length exceeds the sanity cap");
  BBMG_REQUIRE(header.remaining() == payload_len + 4u,
               "durable: snapshot file length does not match its header");
  const std::uint8_t* payload = data + header.position();
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(payload[payload_len]) |
      (static_cast<std::uint32_t>(payload[payload_len + 1]) << 8) |
      (static_cast<std::uint32_t>(payload[payload_len + 2]) << 16) |
      (static_cast<std::uint32_t>(payload[payload_len + 3]) << 24);
  BBMG_REQUIRE(crc32(payload, payload_len) == stored_crc,
               "durable: snapshot checksum mismatch");

  ByteReader r(payload, payload_len);
  SessionMeta meta = read_session_meta(r);
  const std::uint64_t seq = r.read_u64();
  StreamingTraceStats::Summary stats;
  stats.periods = r.read_u64();
  stats.events = r.read_u64();
  stats.task_events = r.read_u64();
  stats.message_events = r.read_u64();
  stats.max_makespan = r.read_u64();
  RobustOnlineLearner learner =
      RobustOnlineLearner::decode_state(meta.task_names, meta.config, r);
  BBMG_REQUIRE(r.done(), "durable: trailing bytes after snapshot payload");
  BBMG_REQUIRE(learner.periods_seen() == stats.periods,
               "durable: snapshot stats disagree with learner state");
  return LoadedSnapshot{std::move(meta), seq, stats, std::move(learner)};
}

LoadedSnapshot decode_snapshot(const std::vector<std::uint8_t>& bytes) {
  return decode_snapshot(bytes.data(), bytes.size());
}

// -- files -----------------------------------------------------------------

std::string snapshot_filename(std::uint64_t seq) {
  return "snap-" + std::to_string(seq) + ".bbsn";
}

std::optional<std::uint64_t> parse_snapshot_filename(const std::string& name) {
  constexpr std::string_view prefix = "snap-";
  constexpr std::string_view suffix = ".bbsn";
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() || digits.size() > 20) return std::nullopt;
  std::uint64_t seq = 0;
  for (const char ch : digits) {
    if (ch < '0' || ch > '9') return std::nullopt;
    seq = seq * 10 + static_cast<std::uint64_t>(ch - '0');
  }
  return seq;
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    raise("durable: cannot create " + tmp + ": " + std::strerror(errno));
  }
  try {
    write_fd_all(fd, bytes.data(), bytes.size(), tmp);
    fsync_or_raise(fd, tmp);
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    raise("durable: rename " + tmp + " -> " + path + " failed: " +
          std::strerror(err));
  }
  fsync_parent_dir(path);
}

std::vector<std::uint8_t> read_file_bytes(const std::string& path,
                                          std::size_t max_size) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    raise("durable: cannot open " + path + ": " + std::strerror(errno));
  }
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      raise("durable: read failed for " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
    if (bytes.size() > max_size) {
      ::close(fd);
      raise("durable: " + path + " exceeds the size sanity cap");
    }
  }
  ::close(fd);
  return bytes;
}

LoadedSnapshot load_snapshot_file(const std::string& path) {
  return decode_snapshot(read_file_bytes(path));
}

}  // namespace bbmg::durable
