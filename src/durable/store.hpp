// SessionStore — the per-session owner of durable state: one directory
// `<data_dir>/session-<id>/` holding the newest snapshots plus the WAL
// that extends them.  The serve layer drives it from two sides:
//
//   * the session's affine worker thread calls append_period() right
//     before the learner applies a period (WAL order == apply order, the
//     determinism invariant) and write_snapshot() at compaction points;
//   * connection threads call flush() when a Resume request needs the
//     honest durable high-water mark.
//
// An internal mutex serializes those; contention is one uncontended lock
// per period in the steady state.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "durable/snapshot.hpp"
#include "durable/wal.hpp"

namespace bbmg::durable {

struct DurableConfig {
  /// Data directory root; empty = durability off (pure in-memory serving).
  std::string dir;
  /// Group-commit interval: fsync the WAL once per this many appends.
  /// 1 = fsync every period (maximum machine-crash durability).
  std::size_t fsync_every{32};
  /// Write a snapshot and rotate the WAL every this many applied periods.
  /// 0 disables periodic compaction (snapshots only at shutdown).
  std::size_t snapshot_every{256};

  [[nodiscard]] bool enabled() const { return !dir.empty(); }
};

/// Snapshots kept per session after compaction (newest N; the previous
/// one survives so a torn newest file never strands the session).
inline constexpr std::size_t kSnapshotsToKeep = 2;

[[nodiscard]] std::string session_dirname(std::uint32_t session);

class SessionStore {
 public:
  /// Set up durable state for a brand-new session: create the session
  /// directory, write the seq-0 snapshot (so recovery always has a base),
  /// and start a fresh WAL.
  [[nodiscard]] static std::unique_ptr<SessionStore> create(
      const DurableConfig& config, SessionMeta meta,
      const RobustOnlineLearner& learner,
      const StreamingTraceStats::Summary& stats);

  /// Re-attach to a recovered session directory.  `snapshot_seq` is the
  /// seq of the snapshot recovery restored from; `wal_base_seq` /
  /// `last_seq` come from the recovery scan.  `reuse_wal` must be true
  /// only when recovery validated the on-disk log end-to-end (scanned,
  /// tail-truncated, tail contiguous with `last_seq`) — it is then
  /// reopened for appending.  Otherwise the log is recreated with
  /// O_TRUNC, so a condemned or stale file that could not be quarantined
  /// or removed is overwritten, never appended over (appending would
  /// leave a sequence discontinuity the next recovery truncates as a
  /// torn tail, silently losing the new records).
  [[nodiscard]] static std::unique_ptr<SessionStore> attach(
      const DurableConfig& config, SessionMeta meta,
      std::uint64_t snapshot_seq, std::uint64_t wal_base_seq,
      std::uint64_t last_seq, bool reuse_wal);

  /// Append one accepted period at `seq` (must be the previous seq + 1).
  /// Called on the session's worker thread before the learner applies.
  void append_period(std::uint64_t seq, const std::vector<Event>& events);

  /// fsync the WAL tail; returns the durable high-water mark.
  std::uint64_t flush();

  /// Write a snapshot of the learner at `seq`, prune old snapshots down
  /// to kSnapshotsToKeep, and rotate the WAL to base `seq`.
  void write_snapshot(std::uint64_t seq, const RobustOnlineLearner& learner,
                      const StreamingTraceStats::Summary& stats);

  /// True when `seq` has advanced snapshot_every periods past the last
  /// snapshot (periodic compaction trigger).
  [[nodiscard]] bool should_compact(std::uint64_t seq) const;

  [[nodiscard]] const SessionMeta& meta() const { return meta_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  SessionStore(const DurableConfig& config, SessionMeta meta,
               std::string dir);

  void prune_snapshots_locked();

  mutable std::mutex mu_;
  DurableConfig config_;
  SessionMeta meta_;
  std::string dir_;  // <config.dir>/session-<id>
  WalWriter wal_;
  std::uint64_t last_snapshot_seq_{0};
};

}  // namespace bbmg::durable
