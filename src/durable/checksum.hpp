// CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant) for the durable
// file formats: every snapshot payload and every WAL record carries a
// checksum so a torn write or bit rot is detected at recovery time and
// the damaged unit is quarantined instead of silently corrupting a model.
// Table-driven, no external dependency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bbmg::durable {

[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

[[nodiscard]] inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace bbmg::durable
