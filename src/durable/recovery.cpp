#include "durable/recovery.hpp"

#include <algorithm>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/error.hpp"
#include "durable/durable_metrics.hpp"
#include "obs/log.hpp"
#include "obs/span.hpp"

namespace bbmg::durable {

namespace fs = std::filesystem;

namespace {

std::optional<std::uint32_t> parse_session_dirname(const std::string& name) {
  constexpr std::string_view prefix = "session-";
  if (name.size() <= prefix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  std::uint64_t id = 0;
  for (std::size_t i = prefix.size(); i < name.size(); ++i) {
    const char ch = name[i];
    if (ch < '0' || ch > '9') return std::nullopt;
    id = id * 10 + static_cast<std::uint64_t>(ch - '0');
    if (id > 0xffffffffull) return std::nullopt;
  }
  return static_cast<std::uint32_t>(id);
}

void quarantine_and_note(const DurableConfig& config, const std::string& path,
                         const std::string& why, RecoveryReport& report,
                         bool reset_on_move_failure = false) {
  const std::string dest = quarantine_file(config.dir, path);
  report.diagnostics.push_back(
      "quarantined " + path + " (" + why + ")" +
      (dest.empty() ? (reset_on_move_failure
                           ? " [move failed; file will be reset]"
                           : " [move failed; left in place]")
                    : " -> " + dest));
  BBMG_LOG_WARN("durable.quarantine", why,
                {{"path", path},
                 {"dest", dest.empty() ? std::string("<move failed>") : dest}});
  if (!dest.empty()) {
    report.quarantined_files.push_back(dest);
    DurableMetrics::get().quarantined_files.inc(1);
  }
}

/// Recover one session directory; appends to the report.  Never throws on
/// damaged state — only on environmental failures.
void recover_session(const DurableConfig& config, const fs::path& dir,
                     std::uint32_t session_id, RecoveryReport& report) {
  // Newest-first list of snapshot candidates.
  std::vector<std::pair<std::uint64_t, fs::path>> snaps;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const auto seq = parse_snapshot_filename(entry.path().filename().string());
    if (seq) snaps.emplace_back(*seq, entry.path());
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::optional<LoadedSnapshot> snap;
  for (const auto& [seq, path] : snaps) {
    try {
      LoadedSnapshot loaded = load_snapshot_file(path.string());
      if (loaded.meta.session != session_id) {
        quarantine_and_note(config, path.string(),
                            "session id mismatch: file says " +
                                std::to_string(loaded.meta.session) +
                                ", directory says " +
                                std::to_string(session_id),
                            report);
        continue;
      }
      if (loaded.seq != seq) {
        quarantine_and_note(config, path.string(),
                            "sequence mismatch: payload says " +
                                std::to_string(loaded.seq) +
                                ", filename says " + std::to_string(seq),
                            report);
        continue;
      }
      snap.emplace(std::move(loaded));
      break;
    } catch (const Error& e) {
      quarantine_and_note(config, path.string(), e.what(), report);
    }
  }

  const fs::path wal_path = dir / kWalFilename;
  if (!snap) {
    report.diagnostics.push_back("session " + std::to_string(session_id) +
                                 ": no usable snapshot; session dropped");
    if (fs::exists(wal_path)) {
      quarantine_and_note(config, wal_path.string(),
                          "WAL without a usable base snapshot", report);
    }
    return;
  }

  RobustOnlineLearner learner = std::move(snap->learner);
  StreamingTraceStats stats_acc;
  stats_acc.restore(snap->stats);
  std::uint64_t last = snap->seq;
  std::uint64_t wal_base = snap->seq;
  std::uint64_t replayed = 0;
  bool reuse_wal = false;

  if (fs::exists(wal_path)) {
    try {
      // Validate the header before replaying anything: a mismatched log
      // is condemned without a single record touching the learner.
      const WalHeader header = read_wal_header(wal_path.string());
      if (header.session != session_id) {
        quarantine_and_note(config, wal_path.string(),
                            "WAL session id mismatch", report,
                            /*reset_on_move_failure=*/true);
      } else if (header.base_seq > snap->seq) {
        // The snapshot this WAL extended is gone (quarantined above):
        // replaying would skip periods.  Keep the snapshot's truth.
        quarantine_and_note(
            config, wal_path.string(),
            "WAL base " + std::to_string(header.base_seq) +
                " is past the best snapshot at " + std::to_string(snap->seq) +
                " (unreplayable gap)",
            report, /*reset_on_move_failure=*/true);
      } else {
        // Stream the records straight into the learner: a legitimate WAL
        // runs up to snapshot_every x kMaxWalRecordPayload bytes, far
        // past any sane whole-file read cap, so it is never materialized.
        const WalFileScan scan = scan_wal_file(
            wal_path.string(), [&](WalRecord&& rec) {
              if (rec.seq <= snap->seq) return;  // already in the snapshot
              stats_acc.observe_events(rec.events);
              learner.observe_raw_period(rec.events);
              last = rec.seq;
              ++replayed;
            });
        if (scan.torn_tail) {
          truncate_file(wal_path.string(), scan.valid_bytes);
          DurableMetrics::get().torn_wal_tails.inc(1);
          ++report.torn_tails;
          report.diagnostics.push_back(
              "session " + std::to_string(session_id) +
              ": torn WAL tail truncated at byte " +
              std::to_string(scan.valid_bytes));
          BBMG_LOG_WARN("durable.torn_tail", "torn WAL tail truncated",
                        {{"session", session_id},
                         {"valid_bytes", scan.valid_bytes}});
        }
        const std::uint64_t last_record =
            scan.records == 0 ? scan.base_seq : scan.last_seq;
        if (last_record >= snap->seq) {
          // The file's physical tail lines up with `last`; appends stay
          // contiguous, so the log can be reused as-is.
          wal_base = scan.base_seq;
          reuse_wal = true;
        } else {
          // Valid but stale (everything it holds is inside the snapshot);
          // appending here would leave a sequence hole.  attach() below
          // recreates the file with O_TRUNC (no remove needed — and a
          // failed remove could not be appended over either way).
          report.diagnostics.push_back(
              "session " + std::to_string(session_id) +
              ": stale WAL (ends at " + std::to_string(last_record) +
              ", snapshot at " + std::to_string(snap->seq) + ") replaced");
        }
      }
    } catch (const Error& e) {
      quarantine_and_note(config, wal_path.string(), e.what(), report,
                          /*reset_on_move_failure=*/true);
    }
  }
  if (!reuse_wal) wal_base = last;

  std::unique_ptr<SessionStore> store = SessionStore::attach(
      config, snap->meta, snap->seq, wal_base, last, reuse_wal);

  if (!reuse_wal && last > snap->seq) {
    // Periods were replayed but the log backing them could not be kept
    // (condemned after replay, or a torn-tail truncate failure).  The
    // fresh empty WAL starts at `last`, so without a snapshot there the
    // next recovery would see an unreplayable snapshot->WAL gap and lose
    // the replayed periods.  Close the gap now.
    try {
      store->write_snapshot(last, learner, stats_acc.summary());
    } catch (const Error& e) {
      report.diagnostics.push_back(
          "session " + std::to_string(session_id) +
          ": post-replay snapshot failed (" + std::string(e.what()) + ")");
    }
  }

  auto& m = DurableMetrics::get();
  m.recovered_sessions.inc(1);
  m.replayed_periods.inc(replayed);
  report.replayed_periods += replayed;
  report.sessions.push_back(RecoveredSession{
      std::move(snap->meta), last, stats_acc.summary(), std::move(learner),
      std::move(store), replayed});
}

}  // namespace

std::string quarantine_file(const std::string& data_dir,
                            const std::string& path) {
  std::error_code ec;
  const fs::path qdir = fs::path(data_dir) / "quarantine";
  fs::create_directories(qdir, ec);
  if (ec) return "";
  const fs::path src(path);
  const std::string base =
      src.parent_path().filename().string() + "-" + src.filename().string();
  fs::path dest = qdir / base;
  for (int i = 1; fs::exists(dest, ec) && i < 1000; ++i) {
    dest = qdir / (base + "." + std::to_string(i));
  }
  fs::rename(src, dest, ec);
  if (ec) return "";
  return dest.string();
}

std::string RecoveryReport::summary_line() const {
  return "durable: recovered " + std::to_string(sessions.size()) +
         " session(s), replayed " + std::to_string(replayed_periods) +
         " WAL period(s), truncated " + std::to_string(torn_tails) +
         " torn tail(s), quarantined " +
         std::to_string(quarantined_files.size()) + " file(s)";
}

RecoveryReport recover_all(const DurableConfig& config) {
  RecoveryReport report;
  if (!config.enabled()) return report;
  const std::uint64_t t0 = obs::now_ns();

  std::error_code ec;
  fs::create_directories(config.dir, ec);
  BBMG_REQUIRE(!ec, "durable: cannot create data directory " + config.dir +
                        ": " + ec.message());

  std::vector<std::pair<std::uint32_t, fs::path>> session_dirs;
  for (const auto& entry : fs::directory_iterator(config.dir, ec)) {
    if (!entry.is_directory()) continue;
    const auto id = parse_session_dirname(entry.path().filename().string());
    if (id) session_dirs.emplace_back(*id, entry.path());
  }
  std::sort(session_dirs.begin(), session_dirs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  for (const auto& [id, dir] : session_dirs) {
    recover_session(config, dir, id, report);
  }

  DurableMetrics::get().recovery_us.observe((obs::now_ns() - t0) / 1000);
  BBMG_LOG_INFO("durable.recovery", report.summary_line(),
                {{"sessions", report.sessions.size()},
                 {"replayed", report.replayed_periods},
                 {"torn_tails", report.torn_tails},
                 {"quarantined", report.quarantined_files.size()}});
  return report;
}

}  // namespace bbmg::durable
