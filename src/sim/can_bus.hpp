// Single shared CAN bus with identifier-based arbitration.
//
// The bus is passive: the Simulator enqueues frames and asks it to start
// transmissions; the Simulator owns the clock and the event queue.  When
// the bus is idle and frames are pending, the pending frame with the
// numerically lowest CAN identifier wins arbitration (ties broken FIFO),
// transmits for can_frame_time, and is delivered at its falling edge.
// Transmission is non-preemptive, as on a real CAN bus.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/can_frame.hpp"

namespace bbmg {

struct BusTransmission {
  CanFrame frame;
  TimeNs rise{0};
  TimeNs fall{0};
};

class CanBus {
 public:
  CanBus(std::uint64_t bitrate_bits_per_sec, bool worst_case_stuffing);

  /// Queue a frame for arbitration.
  void enqueue(const CanFrame& frame);

  [[nodiscard]] bool busy() const { return current_.has_value(); }
  [[nodiscard]] bool has_pending() const { return !pending_.empty(); }
  [[nodiscard]] std::size_t pending_count() const { return pending_.size(); }

  /// If idle and frames are pending, arbitrate and begin transmitting at
  /// `now`; returns the started transmission (rise == now).  Returns
  /// nullopt if busy or nothing is pending.
  std::optional<BusTransmission> try_start(TimeNs now);

  /// Complete the in-flight transmission; returns it.  Precondition: busy.
  BusTransmission finish();

 private:
  std::uint64_t bitrate_;
  bool stuffing_;
  std::uint64_t next_seq_{0};
  // (frame, fifo sequence) — arbitration picks min (can_id, seq).
  std::vector<std::pair<CanFrame, std::uint64_t>> pending_;
  std::optional<BusTransmission> current_;
};

}  // namespace bbmg
