#include "sim/ecu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bbmg {

namespace {

/// Highest priority wins; ties broken by lower task index for determinism.
bool higher_priority(const EcuJob& a, const EcuJob& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  return a.task < b.task;
}

}  // namespace

bool Ecu::should_preempt() const {
  if (!running_.has_value() || ready_.empty()) return false;
  const auto best = std::max_element(
      ready_.begin(), ready_.end(),
      [](const EcuJob& a, const EcuJob& b) { return higher_priority(b, a); });
  return higher_priority(*best, *running_);
}

void Ecu::preempt(TimeNs now) {
  BBMG_REQUIRE(running_.has_value(), "preempt on idle ECU");
  EcuJob job = *running_;
  const TimeNs consumed = now - slice_start_;
  BBMG_ASSERT(consumed <= job.work_remaining,
              "job consumed more CPU than it had remaining");
  job.work_remaining -= consumed;
  running_.reset();
  ++generation_;
  ready_.push_back(job);
}

EcuJob& Ecu::dispatch(TimeNs now) {
  BBMG_REQUIRE(!running_.has_value(), "dispatch on busy ECU");
  BBMG_REQUIRE(!ready_.empty(), "dispatch with empty ready list");
  const auto best = std::max_element(
      ready_.begin(), ready_.end(),
      [](const EcuJob& a, const EcuJob& b) { return higher_priority(b, a); });
  running_ = *best;
  ready_.erase(best);
  slice_start_ = now;
  ++generation_;
  return *running_;
}

EcuJob Ecu::complete() {
  BBMG_REQUIRE(running_.has_value(), "complete on idle ECU");
  EcuJob job = *running_;
  running_.reset();
  ++generation_;
  return job;
}

}  // namespace bbmg
