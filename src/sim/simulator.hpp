// Discrete-event simulator tying together the design model, the per-ECU
// OSEK-like schedulers, and the CAN bus — the platform substrate on which
// traces are produced exactly the way the paper's GM logging device would
// record them (task start/end plus anonymous message rise/fall).
//
// Each period is simulated in two phases:
//
//  1. *Behaviour resolution* (model/behavior.hpp): the disjunctive choices
//     are drawn, fixing which tasks run and which edges carry messages.
//     This mirrors the MoC's data-driven firing rule — a task fires on the
//     arrival of all its required inputs, where "required" is what its
//     upstream tasks decided to send this period.
//
//  2. *Timed execution*: source tasks are released at the period start
//     (plus optional jitter); a receiving task becomes ready once every
//     message addressed to it this period has been delivered (fallen) on
//     the bus; ECUs run fixed-priority preemptive; completed tasks enqueue
//     their frames, which arbitrate by CAN id.
//
// The phase split guarantees the learnability invariants the candidate
// extraction relies on: a true sender finishes before its frame's rising
// edge, a true receiver starts after all of its frames' falling edges.
// The *timing* itself, however, is emergent — priorities, preemption and
// arbitration decide the interleaving, which is how infrastructure-induced
// dependencies (the paper's Q-O) end up in traces.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "model/system_model.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct SimConfig {
  /// Length of one system period; all activity must fit (checked).
  TimeNs period_length = 100 * kTimeNsPerMs;
  /// CAN bus bitrate in bits/second (500 kbit/s is a typical body bus).
  std::uint64_t bus_bitrate = 500'000;
  /// Account for worst-case bit stuffing in frame times.
  bool worst_case_stuffing = false;
  /// Source-task release jitter, uniform in [0, max], drawn per release.
  TimeNs release_jitter_max = 0;
  /// Probability that any one frame transmission is corrupted on the bus.
  /// CAN controllers retransmit automatically: the failed attempt occupies
  /// the bus (the logging device discards errored frames, so the trace
  /// shows only the successful attempt), then the frame re-arbitrates.
  double bus_error_rate = 0.0;
  /// Per-node clock drift (default off).  Each ECU draws a drift rate
  /// uniform in [0, clock_drift_ppm_max] ppm of wall time; its source
  /// releases lag the ideal period start by a skew that accumulates every
  /// period (rate x period_length) and saturates at clock_drift_cap —
  /// modelling a slow local oscillator between periodic resyncs.  Only
  /// delaying drift is modelled: a fast clock releasing *before* the
  /// period start would let activity cross the period boundary, which the
  /// MoC forbids.  Input-driven releases are unaffected (they follow bus
  /// deliveries, which carry the skew downstream naturally).
  double clock_drift_ppm_max = 0.0;
  TimeNs clock_drift_cap = 1 * kTimeNsPerMs;
  /// Bursty bus errors (default off): a Gilbert–Elliott two-state channel
  /// evaluated per transmission attempt.  In the Good state attempts fail
  /// with bus_error_rate; in the Bad state with burst_error_rate.  The
  /// channel enters Bad with burst_enter_prob and leaves it with
  /// burst_exit_prob (both per attempt).  burst_enter_prob == 0 disables
  /// the state machine entirely.
  double burst_error_rate = 0.0;
  double burst_enter_prob = 0.0;
  double burst_exit_prob = 0.1;
  std::uint64_t seed = 1;
};

struct SimReport {
  Trace trace;
  /// Total CPU preemptions observed across the run.
  std::uint64_t preemptions{0};
  /// Maximum number of frames ever waiting for arbitration.
  std::size_t peak_bus_queue{0};
  /// Latest activity completion relative to its period start.
  TimeNs max_period_makespan{0};
  /// Failed frame transmissions that were retried (bus_error_rate > 0 or
  /// a bursty-channel Bad state).
  std::uint64_t retransmissions{0};
  /// Largest accumulated per-ECU clock skew applied to a release
  /// (clock_drift_ppm_max > 0; saturates at clock_drift_cap).
  TimeNs max_clock_skew{0};
};

/// Simulate `num_periods` periods of `model` and return the recorded trace
/// plus platform statistics.  Throws bbmg::Error if the model is invalid
/// or a period's activity does not finish within period_length.
[[nodiscard]] SimReport simulate(const SystemModel& model,
                                 std::size_t num_periods,
                                 const SimConfig& config = {});

/// Convenience wrapper returning only the trace.
[[nodiscard]] inline Trace simulate_trace(const SystemModel& model,
                                          std::size_t num_periods,
                                          const SimConfig& config = {}) {
  return simulate(model, num_periods, config).trace;
}

}  // namespace bbmg
