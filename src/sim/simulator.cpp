#include "sim/simulator.hpp"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/error.hpp"
#include "model/behavior.hpp"
#include "sim/can_bus.hpp"
#include "sim/ecu.hpp"

namespace bbmg {

namespace {

enum class EvKind : std::uint8_t { Release, Completion, BusDone };

struct SimEvent {
  TimeNs time{0};
  std::uint64_t seq{0};  // FIFO tie-break for equal timestamps
  EvKind kind{EvKind::Release};
  std::size_t subject{0};      // Release: task index; Completion: ECU index
  std::uint64_t generation{0}; // Completion: lazy-invalidation token
};

struct LaterEvent {
  bool operator()(const SimEvent& a, const SimEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

class SimulationRun {
 public:
  SimulationRun(const SystemModel& model, const SimConfig& config)
      : model_(model),
        config_(config),
        rng_(config.seed),
        bus_(config.bus_bitrate, config.worst_case_stuffing),
        ecus_(model.num_ecus()),
        builder_(model.task_names()) {
    // Per-ECU drift rates are drawn only when the knob is on, so the rng
    // stream (and with it every existing seeded trace) is untouched by
    // default.
    if (config_.clock_drift_ppm_max > 0.0) {
      drift_rate_ppm_.resize(ecus_.size());
      for (double& rate : drift_rate_ppm_) {
        rate = rng_.next_double() * config_.clock_drift_ppm_max;
      }
      clock_skew_.assign(ecus_.size(), 0);
    }
  }

  SimReport run(std::size_t num_periods) {
    for (std::size_t p = 0; p < num_periods; ++p) {
      run_period(static_cast<TimeNs>(p) * config_.period_length);
    }
    SimReport report{builder_.take(), preemptions_,      peak_bus_queue_,
                     max_makespan_,   retransmissions_, max_clock_skew_};
    return report;
  }

 private:
  void schedule(TimeNs time, EvKind kind, std::size_t subject,
                std::uint64_t generation = 0) {
    queue_.push(SimEvent{time, next_seq_++, kind, subject, generation});
  }

  void run_period(TimeNs period_start) {
    const std::size_t n = model_.num_tasks();
    const PeriodBehavior behavior = resolve_period(model_, rng_);

    // Each ECU's local clock falls further behind every period, up to the
    // resync cap.  Rates are fixed per run (drawn in the constructor), so
    // this consumes no rng draws.
    if (!drift_rate_ppm_.empty()) {
      for (std::size_t e = 0; e < clock_skew_.size(); ++e) {
        const auto step = static_cast<TimeNs>(
            drift_rate_ppm_[e] * 1e-6 *
            static_cast<double>(config_.period_length));
        clock_skew_[e] =
            std::min(clock_skew_[e] + step, config_.clock_drift_cap);
        max_clock_skew_ = std::max(max_clock_skew_, clock_skew_[e]);
      }
    }

    // How many frames must fall before each task may start.
    missing_inputs_.assign(n, 0);
    out_frames_.assign(n, {});
    for (std::size_t ei : behavior.sent_edges) {
      const EdgeSpec& e = model_.edges()[ei];
      ++missing_inputs_[e.to.index()];
      out_frames_[e.from.index()].push_back(
          CanFrame{e.can_id, e.dlc, ei, 0});
    }
    for (std::size_t t = 0; t < n; ++t) {
      if (!behavior.executed[t]) continue;
      for (const BroadcastSpec& b : model_.tasks()[t].broadcasts) {
        out_frames_[t].push_back(CanFrame{b.can_id, b.dlc, kBroadcastEdge, 0});
      }
    }
    executes_ = behavior.executed;
    completed_.assign(n, false);

    builder_.begin_period();
    period_end_ = period_start;

    // Phase-2 kickoff: tasks with no pending inputs are released at the
    // period start (sources, including infrastructure tasks).
    for (std::size_t t = 0; t < n; ++t) {
      if (!executes_[t] || missing_inputs_[t] != 0) continue;
      TimeNs release = period_start + model_.tasks()[t].release_offset;
      if (!clock_skew_.empty()) {
        release += clock_skew_[model_.tasks()[t].ecu.index()];
      }
      if (config_.release_jitter_max > 0) {
        release += rng_.next_below(config_.release_jitter_max + 1);
      }
      schedule(release, EvKind::Release, t);
    }

    while (!queue_.empty()) {
      const SimEvent ev = queue_.top();
      queue_.pop();
      period_end_ = std::max(period_end_, ev.time);
      switch (ev.kind) {
        case EvKind::Release:
          handle_release(ev.subject, ev.time);
          break;
        case EvKind::Completion:
          handle_completion(ev.subject, ev.generation, ev.time);
          break;
        case EvKind::BusDone:
          handle_bus_done(ev.time, ev.generation != 0);
          break;
      }
    }

    // Sanity: everything the behaviour promised actually happened and fit
    // into the period.
    for (std::size_t t = 0; t < n; ++t) {
      BBMG_ASSERT(!executes_[t] || completed_[t],
                  "task '" + model_.tasks()[t].name +
                      "' did not complete within its period");
    }
    BBMG_ASSERT(!bus_.busy() && !bus_.has_pending(),
                "bus still active at period end");
    const TimeNs makespan = period_end_ - period_start;
    BBMG_REQUIRE(makespan <= config_.period_length,
                 "period activity (" + std::to_string(makespan) +
                     " ns) exceeds period_length — increase the period or "
                     "reduce load");
    max_makespan_ = std::max(max_makespan_, makespan);
    builder_.end_period();
  }

  void handle_release(std::size_t task, TimeNs now) {
    const TaskSpec& spec = model_.tasks()[task];
    EcuJob job;
    job.task = TaskId{task};
    job.priority = spec.priority;
    job.work_remaining =
        spec.exec_min +
        rng_.next_below(spec.exec_max - spec.exec_min + 1);
    job.started = false;
    ecus_[spec.ecu.index()].release(job);
    reschedule(spec.ecu.index(), now);
  }

  void reschedule(std::size_t ecu_index, TimeNs now) {
    Ecu& ecu = ecus_[ecu_index];
    if (ecu.should_preempt()) {
      ecu.preempt(now);
      ++preemptions_;
    }
    if (ecu.idle() && ecu.has_ready()) {
      EcuJob& job = ecu.dispatch(now);
      if (!job.started) {
        job.started = true;
        builder_.add_event(Event::task_start(now, job.task));
      }
      schedule(now + job.work_remaining, EvKind::Completion, ecu_index,
               ecu.generation());
    }
  }

  void handle_completion(std::size_t ecu_index, std::uint64_t generation,
                         TimeNs now) {
    Ecu& ecu = ecus_[ecu_index];
    if (generation != ecu.generation()) return;  // preempted meanwhile
    const EcuJob job = ecu.complete();
    builder_.add_event(Event::task_end(now, job.task));
    completed_[job.task.index()] = true;

    for (CanFrame frame : out_frames_[job.task.index()]) {
      frame.enqueue_time = now;
      bus_.enqueue(frame);
    }
    try_start_bus(now);
    reschedule(ecu_index, now);
  }

  void try_start_bus(TimeNs now) {
    if (auto tx = bus_.try_start(now)) {
      // A corrupted attempt occupies the bus but the logging device
      // discards errored frames: no rise/fall recorded, frame retried.
      // With the Gilbert–Elliott channel enabled the error probability is
      // state-dependent; every draw stays behind its knob so disabled
      // configurations consume the exact rng stream they always did.
      if (config_.burst_enter_prob > 0.0) {
        if (bus_bad_state_) {
          if (rng_.next_bool(config_.burst_exit_prob)) bus_bad_state_ = false;
        } else {
          if (rng_.next_bool(config_.burst_enter_prob)) bus_bad_state_ = true;
        }
      }
      const double error_rate =
          bus_bad_state_ ? config_.burst_error_rate : config_.bus_error_rate;
      const bool corrupted = error_rate > 0.0 && rng_.next_bool(error_rate);
      if (!corrupted) {
        builder_.add_event(Event::msg_rise(tx->rise, tx->frame.can_id));
      }
      schedule(tx->fall, EvKind::BusDone, 0, corrupted ? 1 : 0);
    }
    // Frames still waiting behind the in-flight transmission.
    peak_bus_queue_ = std::max(peak_bus_queue_, bus_.pending_count());
  }

  void handle_bus_done(TimeNs now, bool corrupted) {
    const BusTransmission tx = bus_.finish();
    if (corrupted) {
      ++retransmissions_;
      BBMG_REQUIRE(retransmissions_ < 100000,
                   "bus error rate too high: retransmission storm");
      bus_.enqueue(tx.frame);  // automatic CAN retransmission
      try_start_bus(now);
      return;
    }
    builder_.add_event(Event::msg_fall(now, tx.frame.can_id));
    if (tx.frame.edge_index != kBroadcastEdge) {
      const EdgeSpec& e = model_.edges()[tx.frame.edge_index];
      const std::size_t to = e.to.index();
      BBMG_ASSERT(missing_inputs_[to] > 0, "delivery to task expecting none");
      if (--missing_inputs_[to] == 0) {
        schedule(now, EvKind::Release, to);
      }
    }
    try_start_bus(now);
  }

  const SystemModel& model_;
  const SimConfig& config_;
  Rng rng_;
  CanBus bus_;
  std::vector<Ecu> ecus_;
  TraceBuilder builder_;

  std::priority_queue<SimEvent, std::vector<SimEvent>, LaterEvent> queue_;
  std::uint64_t next_seq_{0};

  std::vector<bool> executes_;
  std::vector<bool> completed_;
  std::vector<std::uint32_t> missing_inputs_;
  std::vector<std::vector<CanFrame>> out_frames_;
  TimeNs period_end_{0};

  std::uint64_t preemptions_{0};
  std::size_t peak_bus_queue_{0};
  TimeNs max_makespan_{0};
  std::uint64_t retransmissions_{0};

  // Clock-drift state (empty when clock_drift_ppm_max == 0).
  std::vector<double> drift_rate_ppm_;
  std::vector<TimeNs> clock_skew_;
  TimeNs max_clock_skew_{0};
  // Gilbert–Elliott channel state (always Good when burst_enter_prob == 0).
  bool bus_bad_state_{false};
};

}  // namespace

SimReport simulate(const SystemModel& model, std::size_t num_periods,
                   const SimConfig& config) {
  model.validate();
  SimulationRun run(model, config);
  return run.run(num_periods);
}

}  // namespace bbmg
