// CAN 2.0A frame timing (Bosch CAN specification 2.0, base frame format).
//
// A data frame with an 11-bit identifier carries
//   SOF(1) + ID(11) + RTR(1) + IDE(1) + r0(1) + DLC(4) + data(8*dlc)
//   + CRC(15) + CRC delimiter(1) + ACK(2) + EOF(7) = 44 + 8*dlc bits,
// followed by a 3-bit interframe space before the bus is free again.
// Bit stuffing (one stuff bit after every five equal bits, applied to the
// 34 + 8*dlc stuffable bits) adds at most floor((34 + 8*dlc - 1)/4) bits.
//
// The identifier doubles as the arbitration priority: numerically lower
// identifiers win (dominant bits win arbitration).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bbmg {

/// Number of edges() index used for frames with no design receiver
/// (infrastructure broadcasts).
inline constexpr std::size_t kBroadcastEdge = static_cast<std::size_t>(-1);

struct CanFrame {
  CanId can_id{0};
  std::uint8_t dlc{8};
  /// Index into SystemModel::edges(), or kBroadcastEdge.
  std::size_t edge_index{kBroadcastEdge};
  TimeNs enqueue_time{0};
};

/// Bus occupancy of one frame in bits, including the interframe space.
[[nodiscard]] constexpr std::uint64_t can_frame_bits(std::uint8_t dlc,
                                                     bool worst_case_stuffing) {
  const std::uint64_t data_bits = 8ull * dlc;
  std::uint64_t bits = 44 + data_bits + 3;  // frame + interframe space
  if (worst_case_stuffing) bits += (34 + data_bits - 1) / 4;
  return bits;
}

/// Transmission time of one frame at the given bitrate.
[[nodiscard]] constexpr TimeNs can_frame_time(std::uint8_t dlc,
                                              std::uint64_t bitrate,
                                              bool worst_case_stuffing) {
  return can_frame_bits(dlc, worst_case_stuffing) * kTimeNsPerSec / bitrate;
}

}  // namespace bbmg
