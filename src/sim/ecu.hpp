// One ECU running an OSEK-like fixed-priority fully-preemptive scheduler.
//
// Like the bus, the ECU is passive state plus scheduling decisions; the
// Simulator owns the clock and turns decisions into events.  Tasks are
// released when their inputs have arrived, dispatched
// highest-priority-first, and a newly released higher-priority task
// preempts the running one (execution resumes later; total CPU demand is
// preserved).  "Start" in the trace sense is the first dispatch; "end" is
// completion — matching what a bus logging device can observe of a task's
// activity window.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace bbmg {

struct EcuJob {
  TaskId task{};
  TaskPriority priority{0};
  TimeNs work_remaining{0};
  bool started{false};  // has it ever been dispatched this period?
};

class Ecu {
 public:
  /// Make a job ready for dispatch.
  void release(const EcuJob& job) { ready_.push_back(job); }

  [[nodiscard]] bool idle() const { return !running_.has_value(); }
  [[nodiscard]] bool has_ready() const { return !ready_.empty(); }
  [[nodiscard]] const std::optional<EcuJob>& running() const {
    return running_;
  }
  [[nodiscard]] TimeNs slice_start() const { return slice_start_; }

  /// Generation counter used to lazily invalidate scheduled completion
  /// events after a preemption.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// Would the best ready job preempt the currently running one?
  [[nodiscard]] bool should_preempt() const;

  /// Preempt the running job at time `now`: its consumed CPU time is
  /// deducted and it goes back to the ready list.  Bumps the generation.
  void preempt(TimeNs now);

  /// Dispatch the highest-priority ready job at `now` (ECU must be idle,
  /// ready must be non-empty).  Returns a reference to the running job —
  /// the caller schedules its completion at now + work_remaining and, if
  /// !started (first dispatch), records the TaskStart event and marks it.
  EcuJob& dispatch(TimeNs now);

  /// Complete the running job (at its scheduled completion time).
  EcuJob complete();

 private:
  std::optional<EcuJob> running_;
  TimeNs slice_start_{0};
  std::uint64_t generation_{0};
  std::vector<EcuJob> ready_;
};

}  // namespace bbmg
