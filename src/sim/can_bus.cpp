#include "sim/can_bus.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bbmg {

CanBus::CanBus(std::uint64_t bitrate_bits_per_sec, bool worst_case_stuffing)
    : bitrate_(bitrate_bits_per_sec), stuffing_(worst_case_stuffing) {
  BBMG_REQUIRE(bitrate_ > 0, "bus bitrate must be positive");
}

void CanBus::enqueue(const CanFrame& frame) {
  pending_.emplace_back(frame, next_seq_++);
}

std::optional<BusTransmission> CanBus::try_start(TimeNs now) {
  if (current_.has_value() || pending_.empty()) return std::nullopt;

  const auto winner = std::min_element(
      pending_.begin(), pending_.end(), [](const auto& a, const auto& b) {
        if (a.first.can_id != b.first.can_id)
          return a.first.can_id < b.first.can_id;
        return a.second < b.second;
      });

  BusTransmission tx;
  tx.frame = winner->first;
  tx.rise = now;
  tx.fall = now + can_frame_time(tx.frame.dlc, bitrate_, stuffing_);
  pending_.erase(winner);
  current_ = tx;
  return tx;
}

BusTransmission CanBus::finish() {
  BBMG_REQUIRE(current_.has_value(), "finish() on an idle bus");
  BusTransmission tx = *current_;
  current_.reset();
  return tx;
}

}  // namespace bbmg
