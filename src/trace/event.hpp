// Raw trace events, exactly the observables of the paper's logging device
// (§2.1): "an event is the start or end of a task, or the rising edge or
// the falling edge of a message transmitted on the bus".  The bus reveals
// no sender/receiver; a message event carries only its CAN identifier,
// which the learner deliberately ignores (the paper's learner treats every
// message occurrence as anonymous).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace bbmg {

enum class EventKind : std::uint8_t {
  TaskStart,
  TaskEnd,
  MsgRise,  // transmission begins on the bus
  MsgFall,  // transmission ends; receivers may consume the payload
};

struct Event {
  TimeNs time{0};
  EventKind kind{EventKind::TaskStart};
  // For TaskStart/TaskEnd: the task index.  For MsgRise/MsgFall: unused.
  TaskId task{};
  // For MsgRise/MsgFall: the CAN identifier observed on the bus.
  CanId can_id{0};

  static Event task_start(TimeNs t, TaskId task) {
    return Event{t, EventKind::TaskStart, task, 0};
  }
  static Event task_end(TimeNs t, TaskId task) {
    return Event{t, EventKind::TaskEnd, task, 0};
  }
  static Event msg_rise(TimeNs t, CanId id) {
    return Event{t, EventKind::MsgRise, TaskId{}, id};
  }
  static Event msg_fall(TimeNs t, CanId id) {
    return Event{t, EventKind::MsgFall, TaskId{}, id};
  }
};

}  // namespace bbmg
