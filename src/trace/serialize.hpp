// Line-based text format for traces, so recorded traces can be stored,
// inspected and replayed without the simulator.  Grammar:
//
//   trace-version 1
//   tasks <name> <name> ...
//   period
//   start <task-name> <time-ns>
//   end <task-name> <time-ns>
//   rise <can-id> <time-ns>
//   fall <can-id> <time-ns>
//   end-period
//   ...
//
// Blank lines and lines starting with '#' are ignored.  Events inside a
// period must be time-ordered (the writer emits them ordered; the parser
// rebuilds periods through TraceBuilder, which re-validates everything).
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace bbmg {

void write_trace(std::ostream& os, const Trace& trace);
[[nodiscard]] std::string trace_to_string(const Trace& trace);

[[nodiscard]] Trace read_trace(std::istream& is);
[[nodiscard]] Trace trace_from_string(const std::string& text);

void save_trace_file(const std::string& path, const Trace& trace);
[[nodiscard]] Trace load_trace_file(const std::string& path);

}  // namespace bbmg
