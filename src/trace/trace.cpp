#include "trace/trace.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace bbmg {

Period::Period(std::vector<TaskExecution> executions,
               std::vector<MessageOccurrence> messages)
    : executions_(std::move(executions)), messages_(std::move(messages)) {
  std::sort(executions_.begin(), executions_.end(),
            [](const TaskExecution& a, const TaskExecution& b) {
              return a.start < b.start ||
                     (a.start == b.start && a.task < b.task);
            });
  std::sort(messages_.begin(), messages_.end(),
            [](const MessageOccurrence& a, const MessageOccurrence& b) {
              return a.rise < b.rise;
            });
}

bool Period::executed(TaskId task) const {
  return execution_of(task) != nullptr;
}

const TaskExecution* Period::execution_of(TaskId task) const {
  for (const auto& e : executions_) {
    if (e.task == task) return &e;
  }
  return nullptr;
}

std::vector<Event> Period::to_events() const {
  std::vector<Event> events;
  events.reserve(2 * (executions_.size() + messages_.size()));
  for (const auto& e : executions_) {
    events.push_back(Event::task_start(e.start, e.task));
    events.push_back(Event::task_end(e.end, e.task));
  }
  for (const auto& m : messages_) {
    events.push_back(Event::msg_rise(m.rise, m.can_id));
    events.push_back(Event::msg_fall(m.fall, m.can_id));
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.time < b.time; });
  return events;
}

Trace::Trace(std::vector<std::string> task_names)
    : task_names_(std::move(task_names)) {}

TaskId Trace::task_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < task_names_.size(); ++i) {
    if (task_names_[i] == name) return TaskId{i};
  }
  raise("unknown task name in trace: '" + name + "'");
}

std::size_t Trace::total_messages() const {
  std::size_t n = 0;
  for (const auto& p : periods_) n += p.messages().size();
  return n;
}

std::size_t Trace::total_executions() const {
  std::size_t n = 0;
  for (const auto& p : periods_) n += p.executions().size();
  return n;
}

void validate_trace(const Trace& trace) {
  const std::size_t nt = trace.num_tasks();
  std::size_t period_no = 0;
  for (const auto& period : trace.periods()) {
    ++period_no;
    const std::string where = " (period " + std::to_string(period_no) + ")";

    BBMG_REQUIRE(!period.executions().empty(),
                 "period without task executions" + where);

    std::vector<bool> seen(nt, false);
    TimeNs prev_start = 0;
    for (const auto& e : period.executions()) {
      BBMG_REQUIRE(e.task.index() < nt, "execution task index out of range" + where);
      BBMG_REQUIRE(!seen[e.task.index()],
                   "task executed more than once in a period" + where);
      seen[e.task.index()] = true;
      BBMG_REQUIRE(e.start < e.end, "task execution with start >= end" + where);
      BBMG_REQUIRE(e.start >= prev_start,
                   "executions not sorted by start time" + where);
      prev_start = e.start;
    }

    TimeNs prev_fall = 0;
    bool first = true;
    for (const auto& m : period.messages()) {
      BBMG_REQUIRE(m.rise < m.fall, "message with rise >= fall" + where);
      if (!first) {
        BBMG_REQUIRE(m.rise >= prev_fall,
                     "overlapping messages on a single bus" + where);
      }
      first = false;
      prev_fall = m.fall;
    }
  }
}

TraceBuilder::TraceBuilder(std::vector<std::string> task_names)
    : trace_(std::move(task_names)),
      open_start_(trace_.num_tasks(), std::nullopt) {}

void TraceBuilder::begin_period() {
  BBMG_REQUIRE(!in_period_, "begin_period inside an open period");
  in_period_ = true;
  executions_.clear();
  messages_.clear();
  std::fill(open_start_.begin(), open_start_.end(), std::nullopt);
  open_msg_.reset();
}

void TraceBuilder::add_event(const Event& e) {
  BBMG_REQUIRE(in_period_, "event outside a period");
  switch (e.kind) {
    case EventKind::TaskStart: {
      BBMG_REQUIRE(e.task.index() < trace_.num_tasks(), "task index out of range");
      BBMG_REQUIRE(!open_start_[e.task.index()].has_value(),
                   "task started twice without ending");
      for (const auto& done : executions_) {
        BBMG_REQUIRE(done.task != e.task, "task executed twice in one period");
      }
      open_start_[e.task.index()] = e.time;
      break;
    }
    case EventKind::TaskEnd: {
      BBMG_REQUIRE(e.task.index() < trace_.num_tasks(), "task index out of range");
      auto& open = open_start_[e.task.index()];
      BBMG_REQUIRE(open.has_value(), "task end without start");
      executions_.push_back(TaskExecution{e.task, *open, e.time});
      open.reset();
      break;
    }
    case EventKind::MsgRise: {
      BBMG_REQUIRE(!open_msg_.has_value(),
                   "message rise while another message is on the bus");
      open_msg_ = std::make_pair(e.time, e.can_id);
      break;
    }
    case EventKind::MsgFall: {
      BBMG_REQUIRE(open_msg_.has_value(), "message fall without rise");
      BBMG_REQUIRE(open_msg_->second == e.can_id,
                   "message fall id differs from rise id");
      messages_.push_back(
          MessageOccurrence{open_msg_->first, e.time, e.can_id});
      open_msg_.reset();
      break;
    }
  }
}

void TraceBuilder::end_period() {
  BBMG_REQUIRE(in_period_, "end_period without begin_period");
  for (std::size_t t = 0; t < open_start_.size(); ++t) {
    BBMG_REQUIRE(!open_start_[t].has_value(),
                 "period ended with a task still running");
  }
  BBMG_REQUIRE(!open_msg_.has_value(),
               "period ended with a message still on the bus");
  trace_.add_period(Period(std::move(executions_), std::move(messages_)));
  executions_ = {};
  messages_ = {};
  in_period_ = false;
}

void TraceBuilder::reset() {
  in_period_ = false;
  executions_.clear();
  messages_.clear();
  std::fill(open_start_.begin(), open_start_.end(), std::nullopt);
  open_msg_.reset();
}

Trace TraceBuilder::take() {
  BBMG_REQUIRE(!in_period_, "take() with an open period");
  validate_trace(trace_);
  return std::move(trace_);
}

}  // namespace bbmg
