#include "trace/segmentation.hpp"

#include "common/error.hpp"

namespace bbmg {

namespace {

void require_time_ordered(const std::vector<Event>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    BBMG_REQUIRE(events[i - 1].time <= events[i].time,
                 "event stream is not time-ordered (index " +
                     std::to_string(i) + ")");
  }
}

/// Feed one run of events into the builder as a period.
void emit_period(TraceBuilder& builder, const std::vector<Event>& events,
                 std::size_t first, std::size_t last_exclusive) {
  if (first == last_exclusive) return;
  builder.begin_period();
  for (std::size_t i = first; i < last_exclusive; ++i) {
    builder.add_event(events[i]);
  }
  builder.end_period();
}

}  // namespace

Trace segment_by_period(const std::vector<Event>& events,
                        std::vector<std::string> task_names,
                        TimeNs period_length) {
  BBMG_REQUIRE(period_length > 0, "period_length must be positive");
  require_time_ordered(events);

  TraceBuilder builder(std::move(task_names));
  std::size_t start = 0;
  while (start < events.size()) {
    const std::uint64_t bin = events[start].time / period_length;
    std::size_t end = start;
    while (end < events.size() && events[end].time / period_length == bin) {
      ++end;
    }
    emit_period(builder, events, start, end);
    start = end;
  }
  return builder.take();
}

Trace segment_by_gap(const std::vector<Event>& events,
                     std::vector<std::string> task_names, TimeNs min_gap) {
  BBMG_REQUIRE(min_gap > 0, "min_gap must be positive");
  require_time_ordered(events);

  TraceBuilder builder(std::move(task_names));
  std::size_t start = 0;
  for (std::size_t i = 1; i <= events.size(); ++i) {
    const bool cut =
        i == events.size() || events[i].time - events[i - 1].time >= min_gap;
    if (!cut) continue;
    emit_period(builder, events, start, i);
    start = i;
  }
  return builder.take();
}

std::vector<Event> flatten(const Trace& trace) {
  std::vector<Event> out;
  for (const auto& period : trace.periods()) {
    for (const Event& e : period.to_events()) out.push_back(e);
  }
  return out;
}

}  // namespace bbmg
