// Period segmentation of flat event streams.
//
// The learner consumes period-structured traces, but a logging device
// produces one flat, timestamped event stream.  When the system period is
// known (the usual case — it is a design parameter), events are binned by
// period index.  When it is not, the idle gaps between periods are much
// longer than any intra-period gap (all activity completes well before the
// deadline), so a gap threshold recovers the boundaries.
//
// Both segmenters refuse streams that violate the MoC at the boundary
// (activity spanning a cut); the builder's validation catches the rest.
#pragma once

#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace bbmg {

/// Split by known period length: an event at time t belongs to period
/// floor(t / period_length).  Empty periods (no events) are dropped.
/// Events must be time-ordered.
[[nodiscard]] Trace segment_by_period(const std::vector<Event>& events,
                                      std::vector<std::string> task_names,
                                      TimeNs period_length);

/// Split at every silence of at least `min_gap` between consecutive
/// events.  Events must be time-ordered.
[[nodiscard]] Trace segment_by_gap(const std::vector<Event>& events,
                                   std::vector<std::string> task_names,
                                   TimeNs min_gap);

/// Flatten a structured trace back into one time-ordered event stream
/// (the inverse direction, for replay and for testing the segmenters).
[[nodiscard]] std::vector<Event> flatten(const Trace& trace);

}  // namespace bbmg
