// Structured execution traces.
//
// A Trace is a sequence of periods (paper §2.1: the system repeatedly
// executes a set of predefined tasks in periods; no message crosses a period
// boundary).  Each period records which tasks executed (start/end times) and
// the anonymous message occurrences seen on the bus (rise/fall times).  The
// learner consumes this structured form; TraceBuilder assembles it from raw
// events, and serialize.hpp round-trips it through a line-based text format.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/event.hpp"

namespace bbmg {

struct TaskExecution {
  TaskId task{};
  TimeNs start{0};
  TimeNs end{0};
};

struct MessageOccurrence {
  TimeNs rise{0};
  TimeNs fall{0};
  CanId can_id{0};
};

class Period {
 public:
  Period() = default;
  Period(std::vector<TaskExecution> executions,
         std::vector<MessageOccurrence> messages);

  [[nodiscard]] const std::vector<TaskExecution>& executions() const {
    return executions_;
  }
  [[nodiscard]] const std::vector<MessageOccurrence>& messages() const {
    return messages_;
  }

  /// Did `task` execute in this period?
  [[nodiscard]] bool executed(TaskId task) const;

  /// Execution record for `task`, or nullptr if it did not run.
  [[nodiscard]] const TaskExecution* execution_of(TaskId task) const;

  /// Flatten back to a time-ordered raw event list.
  [[nodiscard]] std::vector<Event> to_events() const;

 private:
  std::vector<TaskExecution> executions_;   // sorted by start time
  std::vector<MessageOccurrence> messages_; // sorted by rise time
};

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<std::string> task_names);

  [[nodiscard]] std::size_t num_tasks() const { return task_names_.size(); }
  [[nodiscard]] const std::vector<std::string>& task_names() const {
    return task_names_;
  }
  [[nodiscard]] const std::string& task_name(TaskId t) const {
    return task_names_[t.index()];
  }
  /// Index of a task name; throws if unknown.
  [[nodiscard]] TaskId task_by_name(const std::string& name) const;

  void add_period(Period p) { periods_.push_back(std::move(p)); }
  [[nodiscard]] const std::vector<Period>& periods() const { return periods_; }
  [[nodiscard]] std::size_t num_periods() const { return periods_.size(); }

  /// Total message occurrences across all periods.
  [[nodiscard]] std::size_t total_messages() const;
  /// Total task executions across all periods.
  [[nodiscard]] std::size_t total_executions() const;
  /// The paper's "event-pair executions of tasks and messages" metric:
  /// task executions + message occurrences (each contributes one
  /// start/end or rise/fall pair).
  [[nodiscard]] std::size_t total_event_pairs() const {
    return total_messages() + total_executions();
  }

 private:
  std::vector<std::string> task_names_;
  std::vector<Period> periods_;
};

/// Validate well-formedness; throws bbmg::Error describing the first
/// violation.  Rules:
///  * every execution has start < end and a valid task index, and each task
///    executes at most once per period (paper §2.1);
///  * executions are sorted by start time;
///  * every message has rise < fall;
///  * messages are sorted by rise and do not overlap (single shared bus);
///  * a period contains at least one task execution.
void validate_trace(const Trace& trace);

/// Incremental construction from time-ordered raw events.
class TraceBuilder {
 public:
  explicit TraceBuilder(std::vector<std::string> task_names);

  void begin_period();
  void add_event(const Event& e);
  /// Validates and appends the accumulated period.  Throws on dangling
  /// task starts or unmatched message rises.
  void end_period();

  /// Abandon the partially-built period (if any) after a throw from
  /// add_event/end_period left the builder mid-period.  Completed periods
  /// and the task set are untouched; the caller can continue with
  /// begin_period for the next period (the lenient loader's recovery path).
  void reset();

  /// Finish: returns the trace (validates it first).
  [[nodiscard]] Trace take();

 private:
  Trace trace_;
  bool in_period_{false};
  std::vector<TaskExecution> executions_;
  std::vector<MessageOccurrence> messages_;
  std::vector<std::optional<TimeNs>> open_start_;  // per task
  std::optional<std::pair<TimeNs, CanId>> open_msg_;
};

}  // namespace bbmg
