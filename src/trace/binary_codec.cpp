#include "trace/binary_codec.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace bbmg {

// -- writers ---------------------------------------------------------------

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  BBMG_REQUIRE(s.size() <= kMaxNameLength, "string too long for codec");
  append_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void append_event(std::vector<std::uint8_t>& out, const Event& e) {
  append_u8(out, static_cast<std::uint8_t>(e.kind));
  const bool task_event =
      e.kind == EventKind::TaskStart || e.kind == EventKind::TaskEnd;
  append_u32(out, task_event ? e.task.value : e.can_id);
  append_u64(out, e.time);
}

// -- reader ----------------------------------------------------------------

void ByteReader::need(std::size_t n) const {
  if (size_ - pos_ < n) {
    std::ostringstream os;
    os << "binary codec: truncated input (need " << n << " bytes at offset "
       << pos_ << ", have " << (size_ - pos_) << ")";
    raise(os.str());
  }
}

std::uint8_t ByteReader::read_u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string ByteReader::read_string() {
  const std::uint16_t len = read_u16();
  if (len > kMaxNameLength) {
    raise("binary codec: string length exceeds sanity cap");
  }
  need(len);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

Event ByteReader::read_event() {
  const std::uint8_t kind = read_u8();
  if (kind > static_cast<std::uint8_t>(EventKind::MsgFall)) {
    std::ostringstream os;
    os << "binary codec: invalid event kind " << int{kind} << " at offset "
       << (pos_ - 1);
    raise(os.str());
  }
  const std::uint32_t id = read_u32();
  const std::uint64_t time = read_u64();
  Event e;
  e.time = time;
  e.kind = static_cast<EventKind>(kind);
  if (e.kind == EventKind::TaskStart || e.kind == EventKind::TaskEnd) {
    e.task = TaskId{id};
  } else {
    e.can_id = id;
  }
  return e;
}

// -- task-name table -------------------------------------------------------

void append_task_names(std::vector<std::uint8_t>& out,
                       const std::vector<std::string>& names) {
  BBMG_REQUIRE(names.size() <= kMaxTasks, "too many tasks for codec");
  append_u16(out, static_cast<std::uint16_t>(names.size()));
  for (const std::string& n : names) append_string(out, n);
}

std::vector<std::string> read_task_names(ByteReader& r) {
  const std::uint16_t n = r.read_u16();
  if (n > kMaxTasks) raise("binary codec: task count exceeds sanity cap");
  std::vector<std::string> names;
  names.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) names.push_back(r.read_string());
  return names;
}

// -- whole traces ----------------------------------------------------------

std::vector<std::uint8_t> encode_trace(const Trace& trace) {
  std::vector<std::uint8_t> out;
  out.reserve(32 + trace.total_event_pairs() * 2 * kEncodedEventSize);
  append_u32(out, kBinaryCodecMagic);
  append_u16(out, kBinaryCodecVersion);
  append_task_names(out, trace.task_names());
  BBMG_REQUIRE(trace.num_periods() <= kMaxPeriods, "too many periods");
  append_u32(out, static_cast<std::uint32_t>(trace.num_periods()));
  for (const Period& p : trace.periods()) {
    const std::vector<Event> events = p.to_events();
    append_u32(out, static_cast<std::uint32_t>(events.size()));
    for (const Event& e : events) append_event(out, e);
  }
  return out;
}

Trace decode_trace(const std::uint8_t* data, std::size_t size) {
  ByteReader r(data, size);
  if (r.read_u32() != kBinaryCodecMagic) {
    raise("binary codec: bad magic (not a BBTC trace)");
  }
  const std::uint16_t version = r.read_u16();
  if (version != kBinaryCodecVersion) {
    std::ostringstream os;
    os << "binary codec: unsupported version " << version << " (expected "
       << kBinaryCodecVersion << ")";
    raise(os.str());
  }
  std::vector<std::string> names = read_task_names(r);
  TraceBuilder builder(std::move(names));
  const std::uint32_t nperiods = r.read_u32();
  if (nperiods > kMaxPeriods) {
    raise("binary codec: period count exceeds sanity cap");
  }
  for (std::uint32_t p = 0; p < nperiods; ++p) {
    const std::uint32_t nevents = r.read_u32();
    if (nevents > kMaxEventsPerPeriod) {
      raise("binary codec: event count exceeds sanity cap");
    }
    builder.begin_period();
    for (std::uint32_t i = 0; i < nevents; ++i) {
      builder.add_event(r.read_event());
    }
    builder.end_period();
  }
  if (!r.done()) {
    raise("binary codec: trailing garbage after trace body");
  }
  return builder.take();
}

Trace decode_trace(const std::vector<std::uint8_t>& bytes) {
  return decode_trace(bytes.data(), bytes.size());
}

void save_trace_file_binary(const std::string& path, const Trace& trace) {
  std::ofstream os(path, std::ios::binary);
  BBMG_REQUIRE(os.good(), "cannot open file for writing: " + path);
  const std::vector<std::uint8_t> bytes = encode_trace(trace);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  BBMG_REQUIRE(os.good(), "write failed: " + path);
}

Trace load_trace_file_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  BBMG_REQUIRE(is.good(), "cannot open file for reading: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(is)),
                                  std::istreambuf_iterator<char>());
  return decode_trace(bytes);
}

}  // namespace bbmg
