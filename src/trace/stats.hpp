// Descriptive statistics of a trace — what an integrator inspects before
// trusting a learning run: per-task execution counts and times, bus load,
// period makespans, message ambiguity.  Rendered as a table by the
// trace_tool and used by tests to characterize generated workloads.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace bbmg {

struct TaskStats {
  TaskId task{};
  std::size_t executions{0};        // periods in which it ran
  TimeNs total_exec_time{0};        // sum of (end - start)
  TimeNs min_exec_time{0};
  TimeNs max_exec_time{0};
  [[nodiscard]] TimeNs mean_exec_time() const {
    return executions == 0 ? 0 : total_exec_time / executions;
  }
  /// Fraction of periods in which the task executed.
  double activation_rate{0.0};
};

struct PeriodStats {
  std::size_t messages{0};
  std::size_t executions{0};
  TimeNs makespan{0};       // last event - first event
  TimeNs bus_busy_time{0};  // sum of message transmission times
};

struct TraceStats {
  std::vector<TaskStats> per_task;
  std::vector<PeriodStats> per_period;
  std::size_t total_messages{0};
  TimeNs max_makespan{0};
  double mean_messages_per_period{0.0};
  /// Mean bus-busy fraction of the makespan across periods.
  double mean_bus_utilization{0.0};
};

[[nodiscard]] TraceStats compute_stats(const Trace& trace);

/// Thread-safe streaming counterpart of TraceStats for live ingestion:
/// workers observe raw period event lists as they arrive and any thread can
/// read a consistent-enough summary at any time.  Built on the always-on
/// relaxed-atomic primitives (obs/metrics.hpp), so it keeps counting in
/// BBMG_OBS=OFF builds — these are functional statistics, not
/// instrumentation.  Unlike compute_stats it works per raw period (no
/// whole-Trace in memory) and therefore tracks only the whole-stream
/// aggregates, not per-task breakdowns.
class StreamingTraceStats {
 public:
  struct Summary {
    std::uint64_t periods{0};
    std::uint64_t events{0};
    std::uint64_t task_events{0};
    std::uint64_t message_events{0};
    /// Largest (last event time - first event time) over observed periods.
    std::uint64_t max_makespan{0};
  };

  /// Account one raw period's event list (any thread).
  void observe_events(const std::vector<Event>& events);

  [[nodiscard]] Summary summary() const;

  /// Seed a freshly constructed accumulator with a previously captured
  /// summary (durable-snapshot restore).  Adds onto current values, so it
  /// must be called once, before any observe_events.
  void restore(const Summary& s);

 private:
  obs::AtomicCounter periods_;
  obs::AtomicCounter events_;
  obs::AtomicCounter task_events_;
  obs::AtomicCounter message_events_;
  obs::AtomicMax max_makespan_;
};

/// Multi-line human-readable rendering.
[[nodiscard]] std::string stats_to_string(const TraceStats& stats,
                                          const std::vector<std::string>& names);

}  // namespace bbmg
