// Compact binary codec for traces, the wire-facing sibling of the text
// format in serialize.hpp.  The text format is for inspection and diffing;
// live streams (src/serve) pay its tokenizer on every event, which is the
// dominant ingest cost once the learner is sharded.  This codec is a
// fixed-width little-endian encoding that round-trips a trace exactly
// (same periods, same event order, same task-name table) at roughly 13
// bytes per event and no parsing beyond bounds-checked loads.
//
// Layout (all integers little-endian):
//
//   header:  magic u32 'BBTC' | version u16 | ntasks u16
//            ntasks x { len u16 | name bytes }
//   body:    nperiods u32
//            nperiods x { nevents u32 | nevents x event }
//   event:   kind u8 | id u32 (task index or CAN id) | time u64
//
// Decoding is strict: a wrong magic, an unsupported version, a truncated
// buffer, an out-of-range kind, or a size field beyond the sanity caps
// throws bbmg::Error — corrupt frames are rejected, never guessed at.
// Period payloads are rebuilt through TraceBuilder, so a decoded trace
// satisfies the same invariants as one loaded from text.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "trace/event.hpp"
#include "trace/trace.hpp"

namespace bbmg {

inline constexpr std::uint32_t kBinaryCodecMagic = 0x43544242u;  // "BBTC"
inline constexpr std::uint16_t kBinaryCodecVersion = 1;
inline constexpr std::size_t kEncodedEventSize = 1 + 4 + 8;

/// Sanity caps applied while decoding, so garbage length fields cannot
/// drive allocations: a frame claiming more than this is rejected.
inline constexpr std::size_t kMaxTasks = 4096;
inline constexpr std::size_t kMaxNameLength = 4096;
inline constexpr std::size_t kMaxEventsPerPeriod = 1u << 24;
inline constexpr std::size_t kMaxPeriods = 1u << 24;

// -- primitive writers (append to a byte buffer) ---------------------------

void append_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void append_u16(std::vector<std::uint8_t>& out, std::uint16_t v);
void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void append_string(std::vector<std::uint8_t>& out, const std::string& s);
void append_event(std::vector<std::uint8_t>& out, const Event& e);

// -- bounds-checked reader -------------------------------------------------

/// Cursor over a byte buffer; every read checks the remaining length and
/// throws bbmg::Error("binary codec: truncated input ...") on overrun.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t read_u8();
  [[nodiscard]] std::uint16_t read_u16();
  [[nodiscard]] std::uint32_t read_u32();
  [[nodiscard]] std::uint64_t read_u64();
  /// Reads u16 length + bytes; length capped at kMaxNameLength.
  [[nodiscard]] std::string read_string();
  [[nodiscard]] Event read_event();

  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  void need(std::size_t n) const;
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_{0};
};

// -- task-name table (shared with the serve wire protocol) -----------------

void append_task_names(std::vector<std::uint8_t>& out,
                       const std::vector<std::string>& names);
[[nodiscard]] std::vector<std::string> read_task_names(ByteReader& r);

// -- whole traces ----------------------------------------------------------

[[nodiscard]] std::vector<std::uint8_t> encode_trace(const Trace& trace);
[[nodiscard]] Trace decode_trace(const std::uint8_t* data, std::size_t size);
[[nodiscard]] Trace decode_trace(const std::vector<std::uint8_t>& bytes);

void save_trace_file_binary(const std::string& path, const Trace& trace);
[[nodiscard]] Trace load_trace_file_binary(const std::string& path);

}  // namespace bbmg
