#include "trace/serialize.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/text.hpp"

namespace bbmg {

void write_trace(std::ostream& os, const Trace& trace) {
  os << "trace-version 1\n";
  os << "tasks";
  for (const auto& name : trace.task_names()) os << ' ' << name;
  os << '\n';
  for (const auto& period : trace.periods()) {
    os << "period\n";
    for (const Event& e : period.to_events()) {
      switch (e.kind) {
        case EventKind::TaskStart:
          os << "start " << trace.task_name(e.task) << ' ' << e.time << '\n';
          break;
        case EventKind::TaskEnd:
          os << "end " << trace.task_name(e.task) << ' ' << e.time << '\n';
          break;
        case EventKind::MsgRise:
          os << "rise " << e.can_id << ' ' << e.time << '\n';
          break;
        case EventKind::MsgFall:
          os << "fall " << e.can_id << ' ' << e.time << '\n';
          break;
      }
    }
    os << "end-period\n";
  }
}

std::string trace_to_string(const Trace& trace) {
  std::ostringstream oss;
  write_trace(oss, trace);
  return oss.str();
}

Trace read_trace(std::istream& is) {
  std::string line;
  std::size_t line_no = 0;

  auto next_meaningful = [&](std::vector<std::string>& toks) -> bool {
    while (std::getline(is, line)) {
      ++line_no;
      const auto trimmed = trim(line);
      if (trimmed.empty() || trimmed.front() == '#') continue;
      toks = split_ws(trimmed);
      return true;
    }
    return false;
  };

  // Every diagnostic below carries the `line:col` position it points at;
  // line_no is kept current by next_meaningful, so it is correct even
  // inside the lazily evaluated BBMG_REQUIRE messages (the first line of
  // an empty stream reports as line 1:1).  Token-addressed diagnostics
  // pass the 0-based index of the offending token; line-level ones point
  // at the first token.
  auto at_pos = [&](std::size_t token_index = 0) {
    return " at line " + std::to_string(line_no == 0 ? 1 : line_no) + ":" +
           std::to_string(token_col(line, token_index));
  };

  auto parse_time = [&](const std::string& tok,
                        std::size_t token_index) -> TimeNs {
    std::uint64_t v = 0;
    if (!parse_u64(tok, v)) {
      raise("trace parse error" + at_pos(token_index) + ": bad time '" + tok +
            "'");
    }
    return v;
  };

  std::vector<std::string> toks;
  BBMG_REQUIRE(next_meaningful(toks) && toks.size() == 2 &&
                   toks[0] == "trace-version" && toks[1] == "1",
               "trace must start with 'trace-version 1'" + at_pos());

  BBMG_REQUIRE(next_meaningful(toks) && toks.size() >= 2 && toks[0] == "tasks",
               "expected 'tasks <name>...' header" + at_pos());
  std::vector<std::string> names(toks.begin() + 1, toks.end());

  TraceBuilder builder(names);
  // Local name->id map for O(1) lookup during parsing.
  auto task_id = [&](const std::string& name) -> TaskId {
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return TaskId{i};
    }
    raise("trace parse error" + at_pos(1) + ": unknown task '" + name + "'");
  };

  // Builder invariant violations (duplicate starts, orphan edges, ...) are
  // detected inside TraceBuilder, which knows nothing about lines; re-raise
  // them with the offending position attached so every parse diagnostic is
  // uniformly line:col-addressed.
  auto with_line = [&](auto&& fn) {
    try {
      fn();
    } catch (const Error& e) {
      raise(std::string(e.what()) + at_pos());
    }
  };

  bool in_period = false;
  while (next_meaningful(toks)) {
    const std::string& kw = toks[0];
    if (kw == "period") {
      BBMG_REQUIRE(!in_period, "nested 'period'" + at_pos());
      with_line([&] { builder.begin_period(); });
      in_period = true;
    } else if (kw == "end-period") {
      BBMG_REQUIRE(in_period, "'end-period' without 'period'" + at_pos());
      with_line([&] { builder.end_period(); });
      in_period = false;
    } else if (kw == "start" || kw == "end") {
      BBMG_REQUIRE(in_period && toks.size() == 3,
                   "bad task event" + at_pos());
      const TaskId t = task_id(toks[1]);
      const TimeNs time = parse_time(toks[2], 2);
      with_line([&] {
        builder.add_event(kw == "start" ? Event::task_start(time, t)
                                        : Event::task_end(time, t));
      });
    } else if (kw == "rise" || kw == "fall") {
      BBMG_REQUIRE(in_period && toks.size() == 3,
                   "bad message event" + at_pos());
      std::uint64_t can_id = 0;
      BBMG_REQUIRE(parse_u64(toks[1], can_id), "bad can id" + at_pos(1));
      const TimeNs time = parse_time(toks[2], 2);
      with_line([&] {
        builder.add_event(kw == "rise"
                              ? Event::msg_rise(time, static_cast<CanId>(can_id))
                              : Event::msg_fall(time, static_cast<CanId>(can_id)));
      });
    } else {
      raise("trace parse error" + at_pos() + ": unknown keyword '" + kw + "'");
    }
  }
  BBMG_REQUIRE(!in_period, "trace ended inside a period" + at_pos());
  Trace result;
  with_line([&] { result = builder.take(); });
  return result;
}

Trace trace_from_string(const std::string& text) {
  std::istringstream iss(text);
  return read_trace(iss);
}

void save_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream ofs(path);
  BBMG_REQUIRE(ofs.good(), "cannot open trace file for writing: " + path);
  write_trace(ofs, trace);
  BBMG_REQUIRE(ofs.good(), "failed writing trace file: " + path);
}

Trace load_trace_file(const std::string& path) {
  std::ifstream ifs(path);
  BBMG_REQUIRE(ifs.good(), "cannot open trace file: " + path);
  return read_trace(ifs);
}

}  // namespace bbmg
