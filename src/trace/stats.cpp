#include "trace/stats.hpp"

#include <algorithm>

#include "common/table.hpp"
#include "common/text.hpp"

namespace bbmg {

TraceStats compute_stats(const Trace& trace) {
  TraceStats stats;
  const std::size_t n = trace.num_tasks();
  stats.per_task.resize(n);
  for (std::size_t i = 0; i < n; ++i) stats.per_task[i].task = TaskId{i};

  for (const auto& period : trace.periods()) {
    PeriodStats ps;
    ps.messages = period.messages().size();
    ps.executions = period.executions().size();

    TimeNs first = ~TimeNs{0};
    TimeNs last = 0;
    for (const auto& e : period.executions()) {
      first = std::min(first, e.start);
      last = std::max(last, e.end);
      TaskStats& ts = stats.per_task[e.task.index()];
      const TimeNs dur = e.end - e.start;
      if (ts.executions == 0) {
        ts.min_exec_time = dur;
        ts.max_exec_time = dur;
      } else {
        ts.min_exec_time = std::min(ts.min_exec_time, dur);
        ts.max_exec_time = std::max(ts.max_exec_time, dur);
      }
      ++ts.executions;
      ts.total_exec_time += dur;
    }
    for (const auto& m : period.messages()) {
      first = std::min(first, m.rise);
      last = std::max(last, m.fall);
      ps.bus_busy_time += m.fall - m.rise;
    }
    ps.makespan = (last >= first) ? last - first : 0;
    stats.max_makespan = std::max(stats.max_makespan, ps.makespan);
    stats.total_messages += ps.messages;
    stats.per_period.push_back(ps);
  }

  const std::size_t periods = trace.num_periods();
  if (periods > 0) {
    stats.mean_messages_per_period =
        static_cast<double>(stats.total_messages) / periods;
    double util_sum = 0.0;
    for (const auto& ps : stats.per_period) {
      if (ps.makespan > 0) {
        util_sum += static_cast<double>(ps.bus_busy_time) /
                    static_cast<double>(ps.makespan);
      }
    }
    stats.mean_bus_utilization = util_sum / periods;
  }
  for (auto& ts : stats.per_task) {
    ts.activation_rate =
        periods == 0 ? 0.0 : static_cast<double>(ts.executions) / periods;
  }
  return stats;
}

std::string stats_to_string(const TraceStats& stats,
                            const std::vector<std::string>& names) {
  TextTable table({"Task", "Runs", "Rate", "Exec mean (us)", "Exec max (us)"});
  for (const auto& ts : stats.per_task) {
    const std::string name = ts.task.index() < names.size()
                                 ? names[ts.task.index()]
                                 : "t" + std::to_string(ts.task.index());
    table.add_row({name, std::to_string(ts.executions),
                   format_double(ts.activation_rate, 2),
                   std::to_string(ts.mean_exec_time() / kTimeNsPerUs),
                   std::to_string(ts.max_exec_time / kTimeNsPerUs)});
  }
  std::string out = table.to_string();
  out += "periods: " + std::to_string(stats.per_period.size()) +
         ", messages: " + std::to_string(stats.total_messages) +
         " (mean " + format_double(stats.mean_messages_per_period, 1) +
         "/period), max makespan: " +
         std::to_string(stats.max_makespan / kTimeNsPerUs) +
         " us, mean bus utilization: " +
         format_double(100.0 * stats.mean_bus_utilization, 1) + "%\n";
  return out;
}

void StreamingTraceStats::observe_events(const std::vector<Event>& events) {
  periods_.add(1);
  if (events.empty()) return;
  events_.add(events.size());
  std::uint64_t task_events = 0;
  TimeNs first = events.front().time;
  TimeNs last = events.front().time;
  for (const Event& e : events) {
    if (e.kind == EventKind::TaskStart || e.kind == EventKind::TaskEnd) {
      ++task_events;
    }
    first = std::min(first, e.time);
    last = std::max(last, e.time);
  }
  task_events_.add(task_events);
  message_events_.add(events.size() - task_events);
  max_makespan_.update(static_cast<std::uint64_t>(last - first));
}

void StreamingTraceStats::restore(const Summary& s) {
  periods_.add(s.periods);
  events_.add(s.events);
  task_events_.add(s.task_events);
  message_events_.add(s.message_events);
  max_makespan_.update(s.max_makespan);
}

StreamingTraceStats::Summary StreamingTraceStats::summary() const {
  Summary s;
  s.periods = periods_.value();
  s.events = events_.value();
  s.task_events = task_events_.value();
  s.message_events = message_events_.value();
  s.max_makespan = max_makespan_.value();
  return s;
}

}  // namespace bbmg
