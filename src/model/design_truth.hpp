// Ground-truth dependency functions derived from a design model.
//
// The learner's output lives in the dependency-model world (paper §2.1:
// edges mean dependency, possibly indirect), which is deliberately NOT the
// design-model world (edges mean messages).  Two ground truths are useful:
//
//  * design_dependency(): the dependency function induced by *direct*
//    design messages plus execution determination — what an engineer would
//    read off the component specs.  Used to show which learned
//    dependencies are design-intended and which are emergent.
//
//  * behavioral_dependency(): the most specific dependency function
//    consistent with *every* behaviour the model allows — the ideal
//    learning target.  Computed from the exhaustive behaviour enumeration:
//    the pairwise co-execution analysis gives the requirement level, and
//    message evidence gives which pairs are raised at all.
#pragma once

#include "lattice/dependency_matrix.hpp"
#include "model/behavior.hpp"
#include "model/system_model.hpp"

namespace bbmg {

/// Dependency function from direct design edges only: an edge a->b yields
/// d(a,b) = -> if b executes whenever a does across all behaviours
/// (unconditional determination), ->? otherwise; mirrored on (b,a).
/// Pairs with no direct edge stay ||.
[[nodiscard]] DependencyMatrix design_dependency(const SystemModel& model);

/// The ideal learning target: pairs connected by at least one message in
/// some behaviour are raised, and the level (required vs conditional) is
/// decided by co-execution over all behaviours, exactly mirroring the
/// learner's semantics with perfect knowledge of senders and receivers.
[[nodiscard]] DependencyMatrix behavioral_dependency(const SystemModel& model);

}  // namespace bbmg
