// System *design* models under the paper's control-flow model of
// computation (§2.1): a fixed set of tasks executes repeatedly in periods;
// tasks fire in a data-driven manner; after a task completes it may send
// messages to other tasks within the same period; messages never cross
// period boundaries.
//
// Nodes may be disjunctive (conditionally choosing which successors to
// message, like t1/A/B in the paper) or conjunctive (passively receiving
// from several potential senders, like t4/H/P/Q).  The design model is the
// generator of behaviour; the learner never sees it — it reconstructs a
// *dependency* model from bus traces, and the analysis layer compares the
// two.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace bbmg {

/// When does a task with in-edges execute in a period?
enum class ActivationPolicy : std::uint8_t {
  /// No inputs required: released at every period start (root tasks and
  /// infrastructure tasks).
  Source,
  /// Executes iff at least one message was addressed to it this period
  /// (typical conjunction node downstream of disjunctive choices).
  AnyInput,
  /// Executes iff messages arrived on *all* of its in-edges this period
  /// (strict join; only sensible if all predecessors send unconditionally).
  AllInputs,
};

/// Which out-edges does an executing task send messages on?
enum class OutputPolicy : std::uint8_t {
  /// All out-edges, every time (deterministic fan-out).
  All,
  /// A uniformly random non-empty subset (the paper's "t1 sends to t2 or
  /// t3 or both").
  NonEmptySubset,
  /// Exactly one out-edge, chosen uniformly.
  ExactlyOne,
  /// Each out-edge independently with its EdgeSpec::probability.
  PerEdgeProbability,
};

/// A frame a task puts on the bus with no receiver in the design model —
/// status broadcasts, network management, and other infrastructure traffic.
/// These are exactly the messages through which the execution environment
/// introduces dependencies the design never stated (the paper's Q-O case).
struct BroadcastSpec {
  CanId can_id{0};
  std::uint8_t dlc{8};  // CAN payload length, 0..8 bytes
};

struct TaskSpec {
  std::string name;
  EcuId ecu{};
  TaskPriority priority{0};  // higher value preempts lower, per ECU
  /// Uniform execution-time range, inclusive, nanoseconds of CPU time.
  TimeNs exec_min{100 * kTimeNsPerUs};
  TimeNs exec_max{500 * kTimeNsPerUs};
  ActivationPolicy activation{ActivationPolicy::AnyInput};
  OutputPolicy output{OutputPolicy::All};
  std::vector<BroadcastSpec> broadcasts;
  /// Source tasks only: fixed delay after the period start before release
  /// (sensor phase offsets; ignored for non-source tasks, whose release is
  /// input-driven).
  TimeNs release_offset{0};
  /// Source tasks only: probability the task fires at all in a given
  /// period (event-driven diagnostics, driver inputs).  1.0 (default) is
  /// the classic strictly periodic source; anything below makes the task
  /// *sporadic* — a per-period Bernoulli choice point that behaviour
  /// resolution and exhaustive enumeration both branch on.  Keep at least
  /// one always-firing source per model: a period in which no task
  /// executes is rejected by the trace layer.  Ignored for non-source
  /// tasks, whose execution is input-driven.
  double fire_prob{1.0};
};

struct EdgeSpec {
  TaskId from{};
  TaskId to{};
  CanId can_id{0};
  std::uint8_t dlc{8};
  /// Used only with OutputPolicy::PerEdgeProbability.
  double probability{1.0};
};

class SystemModel {
 public:
  SystemModel() = default;

  /// Add a task; returns its TaskId.  Name must be unique and non-empty.
  TaskId add_task(TaskSpec spec);

  /// Add a message edge; returns its index in edges().
  std::size_t add_edge(EdgeSpec spec);

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] const std::vector<TaskSpec>& tasks() const { return tasks_; }
  [[nodiscard]] const TaskSpec& task(TaskId t) const {
    return tasks_[t.index()];
  }
  [[nodiscard]] const std::vector<EdgeSpec>& edges() const { return edges_; }

  [[nodiscard]] TaskId task_by_name(const std::string& name) const;
  [[nodiscard]] std::vector<std::string> task_names() const;

  /// Indices into edges() of the out-edges of t, in insertion order.
  [[nodiscard]] const std::vector<std::size_t>& out_edges(TaskId t) const {
    return out_edges_[t.index()];
  }
  [[nodiscard]] const std::vector<std::size_t>& in_edges(TaskId t) const {
    return in_edges_[t.index()];
  }

  [[nodiscard]] std::size_t num_ecus() const;

  /// Checks structural sanity; throws bbmg::Error on the first violation:
  /// unique non-empty task names, edges between distinct existing tasks,
  /// unique CAN ids across edges and broadcasts, dlc <= 8, acyclic edge
  /// graph, Source tasks without in-edges and non-Source tasks with at
  /// least one, and a valid probability on every edge.
  void validate() const;

  /// A topological order of the tasks (edges point forward).  Throws if
  /// the graph has a cycle.
  [[nodiscard]] std::vector<TaskId> topological_order() const;

  /// Graphviz rendering of the design model (solid = unconditional edge
  /// from an All-output task, dashed = conditional).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<EdgeSpec> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;
  std::vector<std::vector<std::size_t>> in_edges_;
};

}  // namespace bbmg
