#include "model/design_truth.hpp"

namespace bbmg {

DependencyMatrix design_dependency(const SystemModel& model) {
  const std::size_t n = model.num_tasks();
  DependencyMatrix d(n);

  // The spec-reader view: each design edge is a dependency; whether it is
  // unconditional is read off the sender's output policy alone, and the
  // receiver side is simply the mirror.  No cross-edge reasoning — that is
  // exactly the pessimism the paper wants to improve on.
  for (const auto& e : model.edges()) {
    const auto& sender = model.task(e.from);
    const bool unconditional =
        sender.output == OutputPolicy::All ||
        (sender.output == OutputPolicy::PerEdgeProbability &&
         e.probability >= 1.0) ||
        (sender.output == OutputPolicy::ExactlyOne &&
         model.out_edges(e.from).size() == 1) ||
        (sender.output == OutputPolicy::NonEmptySubset &&
         model.out_edges(e.from).size() == 1);
    const std::size_t a = e.from.index();
    const std::size_t b = e.to.index();
    const DepValue fwd =
        unconditional ? DepValue::Forward : DepValue::MaybeForward;
    d.set(a, b, dep_lub(d.at(a, b), fwd));
    d.set(b, a, dep_lub(d.at(b, a), dep_mirror(fwd)));
  }
  return d;
}

DependencyMatrix behavioral_dependency(const SystemModel& model) {
  const std::size_t n = model.num_tasks();
  const std::vector<PeriodBehavior> behaviors = enumerate_behaviors(model);

  // ran_without[a][b]: a executed in some behaviour where b did not.
  std::vector<char> ran_without(n * n, 0);
  // carried[a][b]: some behaviour has a message a -> b.
  std::vector<char> carried(n * n, 0);

  for (const auto& beh : behaviors) {
    for (std::size_t a = 0; a < n; ++a) {
      if (!beh.executed[a]) continue;
      for (std::size_t b = 0; b < n; ++b) {
        if (!beh.executed[b]) ran_without[a * n + b] = 1;
      }
    }
    for (std::size_t ei : beh.sent_edges) {
      const auto& e = model.edges()[ei];
      carried[e.from.index() * n + e.to.index()] = 1;
    }
  }

  DependencyMatrix d(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a == b || !carried[a * n + b]) continue;
      const DepValue fwd = ran_without[a * n + b] ? DepValue::MaybeForward
                                                  : DepValue::Forward;
      const DepValue bwd = ran_without[b * n + a] ? DepValue::MaybeBackward
                                                  : DepValue::Backward;
      d.set(a, b, dep_lub(d.at(a, b), fwd));
      d.set(b, a, dep_lub(d.at(b, a), bwd));
    }
  }
  return d;
}

}  // namespace bbmg
