#include "model/system_model.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/error.hpp"

namespace bbmg {

TaskId SystemModel::add_task(TaskSpec spec) {
  const TaskId id{tasks_.size()};
  tasks_.push_back(std::move(spec));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

std::size_t SystemModel::add_edge(EdgeSpec spec) {
  BBMG_REQUIRE(spec.from.index() < tasks_.size() &&
                   spec.to.index() < tasks_.size(),
               "edge references unknown task");
  const std::size_t index = edges_.size();
  out_edges_[spec.from.index()].push_back(index);
  in_edges_[spec.to.index()].push_back(index);
  edges_.push_back(spec);
  return index;
}

TaskId SystemModel::task_by_name(const std::string& name) const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].name == name) return TaskId{i};
  }
  raise("unknown task name in model: '" + name + "'");
}

std::vector<std::string> SystemModel::task_names() const {
  std::vector<std::string> names;
  names.reserve(tasks_.size());
  for (const auto& t : tasks_) names.push_back(t.name);
  return names;
}

std::size_t SystemModel::num_ecus() const {
  std::size_t n = 0;
  for (const auto& t : tasks_) n = std::max(n, t.ecu.index() + 1);
  return n;
}

void SystemModel::validate() const {
  BBMG_REQUIRE(!tasks_.empty(), "model has no tasks");

  std::unordered_set<std::string> names;
  for (const auto& t : tasks_) {
    BBMG_REQUIRE(!t.name.empty(), "task with empty name");
    BBMG_REQUIRE(names.insert(t.name).second,
                 "duplicate task name: " + t.name);
    BBMG_REQUIRE(t.exec_min > 0 && t.exec_min <= t.exec_max,
                 "task '" + t.name + "' has invalid execution-time range");
    BBMG_REQUIRE(t.fire_prob > 0.0 && t.fire_prob <= 1.0,
                 "task '" + t.name + "' has fire_prob outside (0,1]");
    for (const auto& b : t.broadcasts) {
      BBMG_REQUIRE(b.dlc <= 8, "broadcast dlc > 8 on task " + t.name);
    }
  }

  std::unordered_set<CanId> can_ids;
  for (const auto& e : edges_) {
    BBMG_REQUIRE(e.from != e.to, "self-edge on task " + task(e.from).name);
    BBMG_REQUIRE(e.dlc <= 8, "edge dlc > 8");
    BBMG_REQUIRE(e.probability >= 0.0 && e.probability <= 1.0,
                 "edge probability outside [0,1]");
    BBMG_REQUIRE(can_ids.insert(e.can_id).second,
                 "duplicate CAN id " + std::to_string(e.can_id));
  }
  for (const auto& t : tasks_) {
    for (const auto& b : t.broadcasts) {
      BBMG_REQUIRE(can_ids.insert(b.can_id).second,
                   "duplicate CAN id " + std::to_string(b.can_id) +
                       " (broadcast of " + t.name + ")");
    }
  }

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const auto& t = tasks_[i];
    if (t.activation == ActivationPolicy::Source) {
      BBMG_REQUIRE(in_edges_[i].empty(),
                   "Source task '" + t.name + "' has in-edges");
    } else {
      BBMG_REQUIRE(!in_edges_[i].empty(),
                   "non-Source task '" + t.name + "' has no in-edges");
    }
  }

  (void)topological_order();  // throws on cycles
}

std::vector<TaskId> SystemModel::topological_order() const {
  std::vector<std::size_t> in_degree(tasks_.size(), 0);
  for (const auto& e : edges_) ++in_degree[e.to.index()];

  std::vector<TaskId> order;
  order.reserve(tasks_.size());
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::size_t t = ready.back();
    ready.pop_back();
    order.push_back(TaskId{t});
    for (std::size_t ei : out_edges_[t]) {
      const std::size_t to = edges_[ei].to.index();
      if (--in_degree[to] == 0) ready.push_back(to);
    }
  }
  BBMG_REQUIRE(order.size() == tasks_.size(),
               "design model has a message cycle");
  return order;
}

std::string SystemModel::to_dot() const {
  std::string out = "digraph design {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (const auto& t : tasks_) {
    out += "  \"" + t.name + "\"";
    if (t.activation == ActivationPolicy::Source) {
      out += " [style=bold]";
    }
    out += ";\n";
  }
  for (const auto& e : edges_) {
    const bool conditional =
        task(e.from).output != OutputPolicy::All;
    out += "  \"" + task(e.from).name + "\" -> \"" + task(e.to).name + "\"";
    out += conditional ? " [style=dashed]" : "";
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace bbmg
