// Logical (untimed) behaviour of a design model within one period.
//
// Resolving a period answers two questions before any timing is simulated:
// which tasks execute, and which edges carry a message.  Resolution walks
// the tasks in topological order, applies each executing task's
// OutputPolicy to choose out-edges, and fires downstream tasks according to
// their ActivationPolicy.  The timed simulator (src/sim) then schedules
// exactly this behaviour on ECUs and the CAN bus; the idealized trace
// generator (src/gen) lays it out sequentially like the paper's Fig. 2.
//
// Besides random resolution, the behaviour space can be enumerated
// exhaustively (every combination of disjunctive choices), which gives
// "perfect" traces for convergence experiments and the design-truth
// dependency function.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "model/system_model.hpp"

namespace bbmg {

struct PeriodBehavior {
  /// executed[t] - did task t run this period?
  std::vector<bool> executed;
  /// Indices into model.edges() of the edges that carried a message, in
  /// causal (sender topological) order.
  std::vector<std::size_t> sent_edges;
};

/// Resolve one period with random disjunctive choices drawn from rng.
[[nodiscard]] PeriodBehavior resolve_period(const SystemModel& model, Rng& rng);

/// Enumerate every distinct behaviour the model allows in a period.
/// Throws bbmg::Error if the count would exceed `max_behaviors` (the space
/// is exponential in the number of disjunctive choices).
[[nodiscard]] std::vector<PeriodBehavior> enumerate_behaviors(
    const SystemModel& model, std::size_t max_behaviors = 100000);

}  // namespace bbmg
