#include "model/behavior.hpp"

#include <functional>

#include "common/error.hpp"

namespace bbmg {

namespace {

bool activation_satisfied(const SystemModel& model, TaskId t,
                          const std::vector<bool>& edge_carried) {
  const TaskSpec& spec = model.task(t);
  const auto& in = model.in_edges(t);
  switch (spec.activation) {
    case ActivationPolicy::Source:
      return true;
    case ActivationPolicy::AnyInput:
      for (std::size_t ei : in) {
        if (edge_carried[ei]) return true;
      }
      return false;
    case ActivationPolicy::AllInputs:
      for (std::size_t ei : in) {
        if (!edge_carried[ei]) return false;
      }
      return !in.empty();
  }
  return false;
}

}  // namespace

PeriodBehavior resolve_period(const SystemModel& model, Rng& rng) {
  const std::size_t n = model.num_tasks();
  PeriodBehavior behavior;
  behavior.executed.assign(n, false);
  std::vector<bool> edge_carried(model.edges().size(), false);

  for (TaskId t : model.topological_order()) {
    const TaskSpec& spec = model.task(t);
    // A sporadic source (fire_prob < 1) is its own per-period choice point.
    // The draw happens only for sporadic tasks, so models without them see
    // exactly the rng stream they always did.
    if (spec.activation == ActivationPolicy::Source && spec.fire_prob < 1.0 &&
        !rng.next_bool(spec.fire_prob)) {
      continue;
    }
    if (!activation_satisfied(model, t, edge_carried)) continue;
    behavior.executed[t.index()] = true;

    const auto& out = model.out_edges(t);
    if (out.empty()) continue;

    std::vector<std::size_t> chosen;
    switch (model.task(t).output) {
      case OutputPolicy::All:
        chosen = out;
        break;
      case OutputPolicy::NonEmptySubset: {
        const std::uint64_t mask = rng.nonempty_subset_mask(out.size());
        for (std::size_t i = 0; i < out.size(); ++i) {
          if (mask & (1ull << i)) chosen.push_back(out[i]);
        }
        break;
      }
      case OutputPolicy::ExactlyOne:
        chosen.push_back(out[rng.pick_index(out.size())]);
        break;
      case OutputPolicy::PerEdgeProbability:
        for (std::size_t ei : out) {
          if (rng.next_bool(model.edges()[ei].probability)) chosen.push_back(ei);
        }
        break;
    }
    for (std::size_t ei : chosen) {
      edge_carried[ei] = true;
      behavior.sent_edges.push_back(ei);
    }
  }
  return behavior;
}

std::vector<PeriodBehavior> enumerate_behaviors(const SystemModel& model,
                                                std::size_t max_behaviors) {
  const std::size_t n = model.num_tasks();
  const std::vector<TaskId> topo = model.topological_order();
  std::vector<PeriodBehavior> result;

  PeriodBehavior current;
  current.executed.assign(n, false);
  std::vector<bool> edge_carried(model.edges().size(), false);

  // Depth-first search over the disjunctive choice points, walking the
  // topological order so that every activation test sees its complete set
  // of upstream decisions.
  std::function<void(std::size_t)> visit = [&](std::size_t pos) {
    if (pos == topo.size()) {
      BBMG_REQUIRE(result.size() < max_behaviors,
                   "behaviour space larger than max_behaviors");
      result.push_back(current);
      return;
    }
    const TaskId t = topo[pos];
    if (!activation_satisfied(model, t, edge_carried)) {
      visit(pos + 1);
      return;
    }
    // A sporadic source contributes one extra branch: the period in which
    // it sat out entirely (executed stays false, no edges carried).
    if (model.task(t).activation == ActivationPolicy::Source &&
        model.task(t).fire_prob < 1.0) {
      visit(pos + 1);
    }
    current.executed[t.index()] = true;
    const auto& out = model.out_edges(t);

    auto try_mask = [&](std::uint64_t mask) {
      std::vector<std::size_t> chosen;
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (mask & (1ull << i)) chosen.push_back(out[i]);
      }
      for (std::size_t ei : chosen) {
        edge_carried[ei] = true;
        current.sent_edges.push_back(ei);
      }
      visit(pos + 1);
      for (std::size_t ei : chosen) edge_carried[ei] = false;
      current.sent_edges.resize(current.sent_edges.size() - chosen.size());
    };

    switch (out.empty() ? OutputPolicy::All : model.task(t).output) {
      case OutputPolicy::All:
        try_mask(out.empty() ? 0 : ((1ull << out.size()) - 1));
        break;
      case OutputPolicy::NonEmptySubset: {
        BBMG_REQUIRE(out.size() <= 20, "fan-out too large to enumerate");
        for (std::uint64_t mask = 1; mask < (1ull << out.size()); ++mask) {
          try_mask(mask);
        }
        break;
      }
      case OutputPolicy::ExactlyOne:
        for (std::size_t i = 0; i < out.size(); ++i) try_mask(1ull << i);
        break;
      case OutputPolicy::PerEdgeProbability: {
        BBMG_REQUIRE(out.size() <= 20, "fan-out too large to enumerate");
        // Enumerate all subsets consistent with the edge probabilities
        // (an edge with probability 0 can never carry, probability 1 must).
        std::uint64_t forced = 0;
        std::uint64_t variable = 0;
        for (std::size_t i = 0; i < out.size(); ++i) {
          const double p = model.edges()[out[i]].probability;
          if (p >= 1.0) forced |= (1ull << i);
          else if (p > 0.0) variable |= (1ull << i);
        }
        // Iterate subsets of `variable` (standard submask walk), always
        // including `forced`.
        std::uint64_t sub = variable;
        for (;;) {
          try_mask(forced | sub);
          if (sub == 0) break;
          sub = (sub - 1) & variable;
        }
        break;
      }
    }
    current.executed[t.index()] = false;
  };

  visit(0);
  return result;
}

}  // namespace bbmg
