// Experiment E12 — sharded-cluster economics (src/cluster):
//   (a) WAL-shipping overhead: the synchronous cost replication adds to
//       the primary's ingest path is exactly the note_applied call (a
//       bounded-queue push; everything else ships on its own thread), so
//       — like E11b prices the WAL — it is timed directly and priced as
//       a fraction of the ingest wall time, with a <5% budget.  The
//       naive A/B (client-observed stream+flush wall time, replicated vs
//       single node) is reported alongside but NOT enforced: it includes
//       the follower's duplicated learning, which on a small machine
//       (this box has 1 core) serializes with the primary's and measures
//       CPU duplication, not shipping,
//   (b) replication lag: after every send, sample how many periods the
//       follower's acked mark trails the primary's stream (the bound is
//       ack_every + the in-flight window), plus the time for the marks
//       to converge once the stream pauses,
//   (c) failover latency: a real 1-shard + follower cluster (spawned via
//       ShardSupervisor), SIGKILL the primary mid-stream, and time the
//       client finishing the stream on the follower — re-checking that
//       the failed-over model is byte-identical to an uninterrupted run.
// Output is one JSON document, printed and also written to
// BENCH_cluster.json so the distributions can be plotted directly.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "cluster/cluster_client.hpp"
#include "cluster/replicator.hpp"
#include "cluster/supervisor.hpp"
#include "common/stopwatch.hpp"
#include "robust/robust_online_learner.hpp"
#include "serve/client.hpp"
#include "serve/resilient_client.hpp"
#include "serve/server.hpp"

#ifndef BBMG_SERVED_BIN
#error "BBMG_SERVED_BIN must point at the bbmg_served executable"
#endif

using namespace bbmg;

namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bbmg_bench_cluster_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

ServerConfig durable_config(const std::string& dir) {
  ServerConfig config;
  config.manager.workers = 2;
  config.manager.durable.dir = dir;
  config.manager.durable.fsync_every = 32;
  return config;
}

cluster::ClusterMap one_shard_map(std::uint16_t follower_port) {
  cluster::ClusterMap map;
  map.epoch = 1;
  cluster::ClusterShard shard;
  shard.primary = cluster::Endpoint{"127.0.0.1", 1};  // never dialed
  shard.follower = cluster::Endpoint{"127.0.0.1", follower_port};
  map.shards.push_back(shard);
  return map;
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 0.5); }

/// The model an uninterrupted learner (server defaults) produces.
DependencyMatrix baseline_model(const Trace& trace) {
  const SessionConfig cfg = OpenSessionMsg{}.to_session_config();
  RobustOnlineLearner learner(trace.task_names(), cfg.robust);
  for (const Period& p : trace.periods()) {
    learner.observe_raw_period(p.to_events());
  }
  return learner.full_snapshot().result.lub();
}

// -- (a) WAL-shipping overhead ----------------------------------------------

/// Stream the trace through a ResilientClient and flush; returns wall ms.
double timed_stream(ResilientClient& client, const Trace& trace) {
  Stopwatch w;
  const std::uint32_t session = client.open_session(trace.task_names());
  for (const Period& p : trace.periods()) {
    client.send_period(session, p.to_events());
  }
  (void)client.flush(session);
  return w.elapsed_ms();
}

double single_node_round(const Trace& trace, std::size_t round) {
  Server server(durable_config(
      fresh_dir("single_" + std::to_string(round))));
  server.start();
  ResilientClient client;
  client.connect("127.0.0.1", server.port());
  const double ms = timed_stream(client, trace);
  server.stop();
  return ms;
}

double replicated_round(const Trace& trace, std::size_t round) {
  Server follower(durable_config(
      fresh_dir("repl_f_" + std::to_string(round))));
  follower.start();
  Server primary(durable_config(
      fresh_dir("repl_p_" + std::to_string(round))));
  auto replicator = std::make_shared<cluster::Replicator>(
      primary.manager(), one_shard_map(follower.port()), 0,
      /*follower_role=*/false);
  primary.set_cluster(replicator);
  replicator->start();
  primary.start();
  ResilientClient client;
  client.connect("127.0.0.1", primary.port());
  const double ms = timed_stream(client, trace);
  primary.stop();
  replicator->stop();
  follower.stop();
  return ms;
}

struct ShipCost {
  double ingest_ms = 0.0;  // stream + local-durable flush wall time
  double ship_ms = 0.0;    // of which: inside note_applied (the ship cost)
  double converge_ms = 0.0;  // follower acks caught up after the flush
};

/// Time the primary-side shipping path directly: the Replicator is driven
/// by hand (not wired into the server), so every note_applied — the one
/// call replication adds to the ingest path — sits under a stopwatch,
/// while the server's flush semantics stay local (no replicated-mark
/// clamp) and give the un-replicated ingest denominator.
ShipCost instrumented_round(const Trace& trace, std::size_t round) {
  Server follower(durable_config(
      fresh_dir("ship_f_" + std::to_string(round))));
  follower.start();
  Server primary(durable_config(
      fresh_dir("ship_p_" + std::to_string(round))));
  auto replicator = std::make_shared<cluster::Replicator>(
      primary.manager(), one_shard_map(follower.port()), 0,
      /*follower_role=*/false);
  replicator->start();
  primary.start();

  ResilientClient client;
  client.connect("127.0.0.1", primary.port());
  ShipCost cost;
  Stopwatch w;
  const std::uint32_t session = client.open_session(trace.task_names());
  std::uint64_t seq = 0;
  for (const Period& p : trace.periods()) {
    const std::vector<Event> events = p.to_events();
    client.send_period(session, events);
    Stopwatch in_ship;
    replicator->note_applied(session, ++seq, events);
    cost.ship_ms += in_ship.elapsed_ms();
  }
  (void)client.flush(session);
  cost.ingest_ms = w.elapsed_ms();

  Stopwatch c;
  while (replicator->bounded_high_water(session, seq) < seq) {
  }
  cost.converge_ms = c.elapsed_ms();

  primary.stop();
  replicator->stop();
  follower.stop();
  return cost;
}

// -- (b) replication lag -----------------------------------------------------

struct LagResult {
  std::vector<double> samples;  // periods the acked mark trails the stream
  double converge_ms = 0.0;     // marks equal after the stream pauses
};

LagResult measure_lag(const Trace& trace, std::size_t rounds,
                      std::size_t ack_every) {
  Server follower(durable_config(fresh_dir("lag_f")));
  follower.start();
  Server primary(durable_config(fresh_dir("lag_p")));
  cluster::ReplicatorConfig rcfg;
  rcfg.ack_every = ack_every;
  auto replicator = std::make_shared<cluster::Replicator>(
      primary.manager(), one_shard_map(follower.port()), 0,
      /*follower_role=*/false, rcfg);
  primary.set_cluster(replicator);
  replicator->start();
  primary.start();

  ResilientClient client;
  client.connect("127.0.0.1", primary.port());
  const std::uint32_t session = client.open_session(trace.task_names());
  LagResult result;
  std::uint64_t seq = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const Period& p : trace.periods()) {
      client.send_period(session, p.to_events());
      ++seq;
      const std::uint64_t acked = replicator->replicated(session);
      result.samples.push_back(
          static_cast<double>(seq - std::min(seq, acked)));
    }
  }
  // Idle-ack convergence: with the stream paused, the ship thread's idle
  // ack round must bring the marks together without any client help.
  Stopwatch w;
  while (replicator->replicated(session) < seq) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  result.converge_ms = w.elapsed_ms();

  primary.stop();
  replicator->stop();
  follower.stop();
  return result;
}

// -- (c) failover latency ----------------------------------------------------

struct FailoverCell {
  double failover_ms = 0.0;  // first post-kill send through final flush
  bool byte_identical = false;
};

FailoverCell measure_failover(const Trace& trace, std::size_t iteration) {
  const std::size_t kill_after = trace.num_periods() / 2;

  cluster::SupervisorConfig scfg;
  scfg.served_bin = BBMG_SERVED_BIN;
  scfg.root_dir = fresh_dir("failover_" + std::to_string(iteration));
  scfg.shards = 1;
  scfg.followers = true;
  cluster::ShardSupervisor supervisor(scfg);
  supervisor.start();

  RetryConfig retry;
  retry.max_retries = 3;
  retry.base_backoff_ms = 5;
  retry.max_backoff_ms = 50;
  retry.request_timeout_ms = 5000;
  retry.seed = iteration + 1;
  cluster::ClusterClient client(supervisor.map(), retry);
  const cluster::ClusterSessionRef ref =
      client.open_session("bench-device", trace.task_names());
  for (std::size_t p = 0; p < kill_after; ++p) {
    client.send_period(ref, trace.periods()[p].to_events());
  }
  (void)client.flush(ref);

  supervisor.kill_primary(0);

  FailoverCell cell;
  Stopwatch w;
  for (std::size_t p = kill_after; p < trace.num_periods(); ++p) {
    client.send_period(ref, trace.periods()[p].to_events());
  }
  const std::uint64_t high_water = client.flush(ref);
  cell.failover_ms = w.elapsed_ms();
  const WireSnapshot snap = client.query(ref, /*drain=*/true);
  cell.byte_identical = high_water == trace.num_periods() &&
                        snap.lub == baseline_model(trace) &&
                        client.failovers() >= 1;
  (void)supervisor.terminate_all();
  fs::remove_all(scfg.root_dir);
  return cell;
}

}  // namespace

int main() {
  const bool full = bench::full_scale();
  const Trace trace = bench::gm_trace(7);  // 18 tasks, 27 periods

  bool within_budget = true;
  double overhead_pct = 0.0;
  double ab_overhead_pct = 0.0;
  std::ostringstream overhead_cells;
  {
    bench::heading("E12a — WAL-shipping overhead on the ingest path "
                   "(<5% budget)");
    const std::size_t rounds = full ? 7 : 3;
    std::vector<double> fractions, single, replicated;
    double converge_ms = 0.0;
    for (std::size_t r = 0; r < rounds; ++r) {
      const ShipCost c = instrumented_round(trace, r);
      fractions.push_back(c.ship_ms / c.ingest_ms * 100.0);
      converge_ms = c.converge_ms;
      std::printf("round %zu: %.2f ms shipping of %.1f ms ingest -> "
                  "%.3f%% (follower converged %.1f ms after the flush)\n",
                  r, c.ship_ms, c.ingest_ms, fractions.back(),
                  c.converge_ms);
      overhead_cells << (r == 0 ? "" : ",\n")
                     << "    {\"round\": " << r
                     << ", \"ingest_ms\": " << c.ingest_ms
                     << ", \"ship_ms\": " << c.ship_ms
                     << ", \"ship_pct\": " << fractions.back()
                     << ", \"converge_ms\": " << c.converge_ms << "}";
    }
    overhead_pct = median(fractions);
    within_budget = overhead_pct < 5.0;
    std::printf("median shipping overhead %.3f%%%s\n", overhead_pct,
                within_budget ? "" : "  ** OVER BUDGET **");

    // Informational A/B: client-observed wall time including the
    // follower's own learning — dominated by CPU duplication when the
    // machine has fewer cores than learners, so it is reported, not
    // budgeted.
    std::vector<double> ab_single, ab_replicated;
    const std::size_t ab_rounds = full ? 5 : 2;
    for (std::size_t r = 0; r < ab_rounds; ++r) {
      // Interleave the configurations so drift (thermal, page cache)
      // lands on both sides evenly.
      ab_single.push_back(single_node_round(trace, r));
      ab_replicated.push_back(replicated_round(trace, r));
    }
    ab_overhead_pct =
        (median(ab_replicated) - median(ab_single)) / median(ab_single) *
        100.0;
    std::printf("A/B wall (informational): single median %.1f ms, "
                "replicated median %.1f ms -> %+.1f%%\n",
                median(ab_single), median(ab_replicated), ab_overhead_pct);
    (void)converge_ms;
  }

  std::ostringstream lag_doc;
  {
    bench::heading("E12b — replication lag distribution (periods behind)");
    const std::size_t rounds = full ? 8 : 3;
    const std::size_t ack_every = 8;
    const LagResult lag = measure_lag(trace, rounds, ack_every);
    std::printf("%zu samples (ack_every=%zu): p50 %.0f, p90 %.0f, "
                "max %.0f periods; idle convergence %.1f ms\n",
                lag.samples.size(), ack_every, median(lag.samples),
                percentile(lag.samples, 0.9),
                percentile(lag.samples, 1.0), lag.converge_ms);
    lag_doc << "  \"replication_lag\": {\"ack_every\": " << ack_every
            << ", \"samples\": " << lag.samples.size()
            << ", \"p50_periods\": " << median(lag.samples)
            << ", \"p90_periods\": " << percentile(lag.samples, 0.9)
            << ", \"max_periods\": " << percentile(lag.samples, 1.0)
            << ", \"converge_ms\": " << lag.converge_ms << "}";
  }

  bool all_identical = true;
  std::ostringstream failover_cells;
  std::vector<double> failover_ms;
  {
    bench::heading("E12c — failover latency (SIGKILL primary mid-stream)");
    const std::size_t iterations = full ? 8 : 4;
    for (std::size_t i = 0; i < iterations; ++i) {
      const FailoverCell c = measure_failover(trace, i);
      all_identical = all_identical && c.byte_identical;
      failover_ms.push_back(c.failover_ms);
      std::printf("iteration %zu: kill -> stream finished on follower in "
                  "%.1f ms, byte-identical=%s\n",
                  i, c.failover_ms, c.byte_identical ? "yes" : "NO");
      failover_cells << (i == 0 ? "" : ",\n")
                     << "    {\"iteration\": " << i
                     << ", \"failover_ms\": " << c.failover_ms
                     << ", \"byte_identical\": "
                     << (c.byte_identical ? "true" : "false") << "}";
    }
    std::printf("failover p50 %.1f ms, max %.1f ms\n", median(failover_ms),
                percentile(failover_ms, 1.0));
  }

  std::ostringstream doc;
  doc << "{\n"
      << "  \"bench\": \"cluster\",\n"
      << "  \"ship_overhead_budget_pct\": 5.0,\n"
      << "  \"ship_overhead_pct\": " << overhead_pct << ",\n"
      << "  \"ab_wall_overhead_pct\": " << ab_overhead_pct << ",\n"
      << "  \"within_budget\": " << (within_budget ? "true" : "false")
      << ",\n"
      << "  \"failover_byte_identical\": "
      << (all_identical ? "true" : "false") << ",\n"
      << "  \"failover_p50_ms\": " << median(failover_ms) << ",\n"
      << "  \"overhead_rounds\": [\n" << overhead_cells.str() << "\n  ],\n"
      << lag_doc.str() << ",\n"
      << "  \"failover\": [\n" << failover_cells.str() << "\n  ]\n"
      << "}\n";

  std::printf("\n%s", doc.str().c_str());
  if (std::FILE* f = std::fopen("BENCH_cluster.json", "w")) {
    std::fputs(doc.str().c_str(), f);
    std::fclose(f);
  }
  return (within_budget && all_identical) ? 0 : 1;
}
