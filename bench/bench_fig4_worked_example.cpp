// Experiment E1 — the paper's worked example (§3.3, Figs. 2 and 4).
//
// Replays the learning process on the Fig. 2 trace step by step and checks
// every intermediate against the numbers printed in the paper:
//   after m1 of period 1:   2 hypotheses (d11, d12)
//   after m2 of period 1:   3 hypotheses (d21, d22, d23)
//   after period 3:         5 most specific hypotheses (d81..d85)
//   their LUB:              dLUB with the emergent d(t1,t4) = ->
#include <cstdio>

#include "bench_util.hpp"
#include "core/candidates.hpp"
#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "core/history.hpp"
#include "core/hypothesis.hpp"
#include "core/post_process.hpp"
#include "gen/scenarios.hpp"

using namespace bbmg;

int main() {
  bench::heading("E1: worked example (paper §3.3, Fig. 2 -> Fig. 4)");
  const Trace trace = paper_example_trace();
  const auto names = trace.task_names();

  // Step through period 1 manually to expose the per-message sets.
  CoExecutionHistory history(4);
  std::vector<Hypothesis> frontier;
  frontier.emplace_back(4);
  const PeriodCandidates pc(trace.periods()[0], 4);
  for (std::size_t msg = 0; msg < pc.num_messages(); ++msg) {
    std::vector<Hypothesis> next;
    for (const Hypothesis& h : frontier) {
      for (const CandidatePair& p : pc.candidates(msg)) {
        if (h.pair_used(p)) continue;
        Hypothesis child = h;
        child.assume(p, history);
        bool dup = false;
        for (const auto& x : next) {
          if (x == child) dup = true;
        }
        if (!dup) next.push_back(std::move(child));
      }
    }
    frontier = std::move(next);
    std::printf("after m%zu of period 1: %zu hypotheses (paper: %s)\n",
                msg + 1, frontier.size(), msg == 0 ? "2 — d11, d12"
                                                   : "3 — d21, d22, d23");
    for (const auto& h : frontier) {
      std::printf("%s\n", h.d.to_table(names).c_str());
    }
  }

  // Full run.
  const LearnResult exact = learn_exact(trace);
  std::printf("after all 3 periods: %zu most specific hypotheses "
              "(paper: 5 — d81..d85)\n\n", exact.hypotheses.size());
  for (std::size_t i = 0; i < exact.hypotheses.size(); ++i) {
    std::printf("hypothesis %zu (weight %llu):\n%s\n", i + 1,
                static_cast<unsigned long long>(exact.hypotheses[i].weight()),
                exact.hypotheses[i].to_table(names).c_str());
  }

  const DependencyMatrix dlub = exact.lub();
  std::printf("dLUB (paper Fig. 4):\n%s\n", dlub.to_table(names).c_str());
  std::printf("headline check d(t1,t4) = %s (paper: ->)\n",
              std::string(dep_to_string(dlub.at(0, 3))).c_str());

  const LearnResult h1 = learn_heuristic(trace, 1);
  std::printf("heuristic bound 1 equals dLUB: %s\n",
              h1.hypotheses.front() == dlub ? "yes" : "NO");
  return 0;
}
