// Experiment E11 — crash-safety economics (src/durable):
//   (a) snapshot size and atomic-write cost as the model grows (vary the
//       number of GM-trace periods ingested before snapshotting),
//   (b) WAL append overhead per accepted period, measured as the relative
//       slowdown of WAL+learner ingest over learner-only ingest — the
//       budget is <5% of ingest wall time at the default group-commit
//       interval (fsync_every=32); fsync-per-period is priced alongside,
//   (c) cold-start recovery latency as a function of WAL tail length
//       (snapshot + replay of 0..108 periods), re-checking that the
//       recovered learner is byte-identical to the uninterrupted one.
// Output is one JSON document, printed and also written to
// BENCH_recovery.json so the curves can be plotted directly.
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "durable/recovery.hpp"

using namespace bbmg;
using namespace bbmg::durable;

namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      (fs::temp_directory_path() / ("bbmg_bench_recovery_" + name)).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

SessionMeta bench_meta(const Trace& trace) {
  SessionMeta meta;
  meta.session = 1;
  meta.task_names = trace.task_names();
  meta.config.online.bound = 16;
  meta.snapshot_interval = 256;
  return meta;
}

std::vector<std::uint8_t> learner_bytes(const RobustOnlineLearner& l) {
  std::vector<std::uint8_t> out;
  l.encode_state(out);
  return out;
}

// -- (a) snapshot size / write cost vs model size --------------------------

struct SnapshotCell {
  std::size_t periods = 0;
  std::size_t events = 0;
  std::size_t snapshot_bytes = 0;
  double encode_ms = 0.0;
  double write_ms = 0.0;
  double load_ms = 0.0;
};

SnapshotCell measure_snapshot(const Trace& trace, std::size_t periods) {
  SessionMeta meta = bench_meta(trace);
  RobustOnlineLearner learner(meta.task_names, meta.config);
  StreamingTraceStats acc;
  std::size_t events = 0;
  std::size_t applied = 0;
  for (const Period& p : trace.periods()) {
    if (applied++ >= periods) break;
    const std::vector<Event> evs = p.to_events();
    events += evs.size();
    acc.observe_events(evs);
    learner.observe_raw_period(evs);
  }

  SnapshotCell cell;
  cell.periods = periods;
  cell.events = events;
  Stopwatch enc;
  const std::vector<std::uint8_t> bytes =
      encode_snapshot(meta, periods, acc.summary(), learner);
  cell.encode_ms = enc.elapsed_ms();
  cell.snapshot_bytes = bytes.size();

  const std::string dir = fresh_dir("snap");
  const std::string path = dir + "/" + snapshot_filename(periods);
  Stopwatch wr;
  write_file_atomic(path, bytes);  // tmp + fsync + rename + dir fsync
  cell.write_ms = wr.elapsed_ms();
  Stopwatch ld;
  (void)load_snapshot_file(path);
  cell.load_ms = ld.elapsed_ms();
  fs::remove_all(dir);
  return cell;
}

// -- (b) WAL append overhead per period ------------------------------------

struct OverheadCell {
  std::size_t fsync_every = 0;
  std::size_t periods = 0;
  double ingest_ms = 0.0;
  double wal_ms = 0.0;
  double overhead_pct = 0.0;
  double wal_us_per_period = 0.0;
};

/// Ingest `rounds` replays of the trace through a durable session exactly
/// as LearningSession::process() orders it (append_period before the
/// learner applies), timing the WAL calls directly.  The budget metric is
/// time-in-WAL as a fraction of the total ingest wall time — an A/B run
/// against a WAL-less learner is too noisy to resolve a microsecond-scale
/// append against a multi-second learner run.
OverheadCell measure_overhead(const Trace& trace, std::size_t rounds,
                              std::size_t fsync_every) {
  std::vector<std::vector<Event>> periods;
  for (const Period& p : trace.periods()) periods.push_back(p.to_events());
  const SessionMeta meta = bench_meta(trace);

  OverheadCell cell;
  cell.fsync_every = fsync_every;
  cell.periods = rounds * periods.size();

  DurableConfig config;
  config.dir = fresh_dir("wal");
  config.fsync_every = fsync_every;
  config.snapshot_every = 0;  // isolate the WAL cost from compaction
  RobustOnlineLearner learner(meta.task_names, meta.config);
  StreamingTraceStats acc;
  std::unique_ptr<SessionStore> store =
      SessionStore::create(config, meta, learner, acc.summary());
  double wal_ms = 0.0;
  Stopwatch w;
  std::uint64_t seq = 0;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& evs : periods) {
      Stopwatch in_wal;
      store->append_period(++seq, evs);
      wal_ms += in_wal.elapsed_ms();
      learner.observe_raw_period(evs);
    }
  }
  Stopwatch in_flush;
  (void)store->flush();
  wal_ms += in_flush.elapsed_ms();
  cell.ingest_ms = w.elapsed_ms();
  store.reset();
  fs::remove_all(config.dir);

  cell.wal_ms = wal_ms;
  cell.overhead_pct = wal_ms / cell.ingest_ms * 100.0;
  cell.wal_us_per_period =
      wal_ms * 1e3 / static_cast<double>(cell.periods);
  return cell;
}

// -- (c) recovery latency vs WAL tail length -------------------------------

struct RecoveryCell {
  std::size_t tail_periods = 0;
  double recover_ms = 0.0;
  std::uint64_t replayed = 0;
  bool byte_identical = false;
};

RecoveryCell measure_recovery(std::size_t tail_periods) {
  const Trace trace = bench::gm_trace(7, std::max<std::size_t>(tail_periods, 1));
  const SessionMeta meta = bench_meta(trace);

  DurableConfig config;
  config.dir = fresh_dir("recover");
  config.fsync_every = 32;
  config.snapshot_every = 0;  // keep the whole tail in the WAL

  // Uninterrupted run: seq-0 snapshot, then `tail_periods` WAL appends.
  RobustOnlineLearner learner(meta.task_names, meta.config);
  StreamingTraceStats acc;
  std::unique_ptr<SessionStore> store =
      SessionStore::create(config, meta, learner, acc.summary());
  std::uint64_t seq = 0;
  for (const Period& p : trace.periods()) {
    if (seq >= tail_periods) break;
    const std::vector<Event> evs = p.to_events();
    store->append_period(++seq, evs);
    acc.observe_events(evs);
    learner.observe_raw_period(evs);
  }
  (void)store->flush();
  store.reset();  // "crash": nothing beyond the WAL survives

  RecoveryCell cell;
  cell.tail_periods = tail_periods;
  Stopwatch w;
  RecoveryReport report = recover_all(config);
  cell.recover_ms = w.elapsed_ms();
  cell.replayed = report.replayed_periods;
  cell.byte_identical =
      report.sessions.size() == 1 && report.sessions[0].seq == tail_periods &&
      learner_bytes(report.sessions[0].learner) == learner_bytes(learner);
  report.sessions.clear();  // close the re-attached WALs
  fs::remove_all(config.dir);
  return cell;
}

}  // namespace

int main() {
  const bool full = bench::full_scale();

  std::ostringstream snaps;
  {
    bench::heading("E11a — snapshot size / write cost vs model size");
    const Trace trace = bench::gm_trace(7, 54);
    const std::vector<std::size_t> sizes =
        full ? std::vector<std::size_t>{1, 4, 8, 16, 27, 54}
             : std::vector<std::size_t>{1, 8, 27, 54};
    bool first = true;
    for (const std::size_t periods : sizes) {
      const SnapshotCell c = measure_snapshot(trace, periods);
      std::printf("periods=%3zu (%5zu events): %6zu B, encode %.2f ms, "
                  "atomic write %.2f ms, load %.2f ms\n",
                  c.periods, c.events, c.snapshot_bytes, c.encode_ms,
                  c.write_ms, c.load_ms);
      snaps << (first ? "" : ",\n")
            << "    {\"periods\": " << c.periods
            << ", \"events\": " << c.events
            << ", \"snapshot_bytes\": " << c.snapshot_bytes
            << ", \"encode_ms\": " << c.encode_ms
            << ", \"write_ms\": " << c.write_ms
            << ", \"load_ms\": " << c.load_ms << "}";
      first = false;
    }
  }

  bool within_budget = true;
  std::ostringstream walcells;
  {
    bench::heading("E11b — WAL append overhead per period (<5% budget)");
    const Trace trace = bench::gm_trace(7);
    const std::size_t rounds = full ? 32 : 8;
    bool first = true;
    for (const std::size_t fsync_every : {std::size_t{32}, std::size_t{1}}) {
      const OverheadCell c = measure_overhead(trace, rounds, fsync_every);
      // The <5% acceptance budget applies to the default group-commit
      // interval; fsync-per-period is reported as the price of maximum
      // machine-crash durability.
      const bool enforced = fsync_every == 32;
      if (enforced && c.overhead_pct >= 5.0) within_budget = false;
      std::printf("fsync_every=%2zu: %.2f ms in WAL of %.1f ms ingest "
                  "over %zu periods -> %.3f%% (%.1f us/period)%s\n",
                  c.fsync_every, c.wal_ms, c.ingest_ms, c.periods,
                  c.overhead_pct, c.wal_us_per_period,
                  enforced && c.overhead_pct >= 5.0 ? "  ** OVER BUDGET **"
                                                    : "");
      walcells << (first ? "" : ",\n")
               << "    {\"fsync_every\": " << c.fsync_every
               << ", \"periods\": " << c.periods
               << ", \"ingest_ms\": " << c.ingest_ms
               << ", \"wal_ms\": " << c.wal_ms
               << ", \"overhead_pct\": " << c.overhead_pct
               << ", \"wal_us_per_period\": " << c.wal_us_per_period
               << ", \"budget_enforced\": " << (enforced ? "true" : "false")
               << "}";
      first = false;
    }
  }

  bool all_identical = true;
  std::ostringstream reccells;
  {
    bench::heading("E11c — recovery latency vs WAL tail length");
    const std::vector<std::size_t> tails =
        full ? std::vector<std::size_t>{0, 8, 27, 54, 108}
             : std::vector<std::size_t>{0, 8, 27, 54};
    bool first = true;
    for (const std::size_t tail : tails) {
      const RecoveryCell c = measure_recovery(tail);
      all_identical = all_identical && c.byte_identical;
      std::printf("tail=%3zu periods: recover %.2f ms, replayed %llu, "
                  "byte-identical=%s\n",
                  c.tail_periods, c.recover_ms,
                  static_cast<unsigned long long>(c.replayed),
                  c.byte_identical ? "yes" : "NO");
      reccells << (first ? "" : ",\n")
               << "    {\"tail_periods\": " << c.tail_periods
               << ", \"recover_ms\": " << c.recover_ms
               << ", \"replayed\": " << c.replayed
               << ", \"byte_identical\": "
               << (c.byte_identical ? "true" : "false") << "}";
      first = false;
    }
  }

  std::ostringstream doc;
  doc << "{\n"
      << "  \"bench\": \"recovery\",\n"
      << "  \"wal_overhead_budget_pct\": 5.0,\n"
      << "  \"within_budget\": " << (within_budget ? "true" : "false")
      << ",\n"
      << "  \"recovery_byte_identical\": "
      << (all_identical ? "true" : "false") << ",\n"
      << "  \"snapshots\": [\n" << snaps.str() << "\n  ],\n"
      << "  \"wal_overhead\": [\n" << walcells.str() << "\n  ],\n"
      << "  \"recovery\": [\n" << reccells.str() << "\n  ]\n"
      << "}\n";

  std::printf("\n%s", doc.str().c_str());
  if (std::FILE* f = std::fopen("BENCH_recovery.json", "w")) {
    std::fputs(doc.str().c_str(), f);
    std::fclose(f);
  }
  return (within_budget && all_identical) ? 0 : 1;
}
