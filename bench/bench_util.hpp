// Shared helpers for the benchmark/reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "gen/gm_case_study.hpp"
#include "sim/simulator.hpp"
#include "trace/trace.hpp"

namespace bbmg::bench {

/// Environment-controlled scale: BBMG_FULL=1 unlocks the long-running
/// configurations (the paper's exact-learner experiment took ~10 minutes
/// on its own data).
inline bool full_scale() {
  const char* v = std::getenv("BBMG_FULL");
  return v != nullptr && v[0] == '1';
}

/// The canonical case-study trace: 18 tasks, 27 periods, ~340 messages,
/// ~700 event pairs (paper §3.4: 18 tasks, 330 messages, 27 periods, 700
/// event-pair executions).
inline Trace gm_trace(std::uint64_t seed = 7,
                      std::size_t periods = kGmCaseStudyPeriods) {
  SimConfig cfg;
  cfg.seed = seed;
  return simulate_trace(gm_case_study_model(), periods, cfg);
}

inline void heading(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

}  // namespace bbmg::bench
