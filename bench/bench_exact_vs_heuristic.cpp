// Experiment E3 — exact vs heuristic learner (paper §3.4).
//
// The paper ran the precise exponential algorithm once on its case-study
// trace: 630.997 s (vs 0.22-19 s for the heuristic), and the single
// returned dependency function equalled the LUB of the heuristic results
// at every bound (Theorem 4 observed in practice).
//
// The exact algorithm's cost is governed by the per-message ambiguity
// |A_m| of the trace (the problem is NP-hard, Theorem 1).  The paper's
// proprietary trace evidently had small candidate sets; our simulated
// GM-scale trace does not, and the exact frontier exceeds millions of
// hypotheses inside one period (reported below, gated by BBMG_FULL=1).
// The reproduction therefore sweeps trace scale upward while the exact
// learner is feasible and, at each point, verifies:
//   * the runtime gap exact >> heuristic,
//   * heuristic(bound 1) >= lub(exact) with equality in the common case,
//   * exact returns the complete most-specific set.
#include <cstdio>

#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"

using namespace bbmg;

namespace {

struct Config {
  const char* name;
  std::size_t tasks;
  std::size_t periods;
};

}  // namespace

int main() {
  bench::heading("E3: exact vs heuristic (paper §3.4: 630.997 s vs 19 s, "
                 "equal results)");

  TextTable table({"Trace", "Msgs", "Exact (s)", "Exact+prune (s)",
                   "Peak set", "Hyps", "Heur b=1 (s)", "Ratio",
                   "lub(exact) vs heur(1)"});

  const Config configs[] = {
      {"paper-4t-27p", 4, 27},
      {"rand-5t-12p", 5, 12},
      {"rand-6t-12p", 6, 12},
      {"rand-6t-20p", 6, 20},
  };

  for (const Config& cfg : configs) {
    Trace trace;
    if (cfg.tasks == 4) {
      trace = idealized_trace(paper_example_model(), cfg.periods, 5);
    } else {
      RandomModelParams params;
      params.num_tasks = cfg.tasks;
      params.num_layers = 3;
      params.extra_edge_density = 0.2;
      params.seed = 3;
      trace = idealized_trace(random_model(params), cfg.periods, 5);
    }

    ExactConfig exact_cfg;
    exact_cfg.max_frontier = 2'000'000;
    Stopwatch we;
    LearnResult exact;
    bool exact_ok = true;
    try {
      exact = learn_exact(trace, exact_cfg);
    } catch (const Error&) {
      exact_ok = false;
    }
    const double exact_secs = we.elapsed_seconds();

    // The lossless dominance pruning (ExactConfig::dominance_pruning):
    // identical result set, smaller frontier (verified by property tests).
    double pruned_secs = -1.0;
    if (exact_ok) {
      ExactConfig pruned_cfg = exact_cfg;
      pruned_cfg.dominance_pruning = true;
      Stopwatch wp;
      (void)learn_exact(trace, pruned_cfg);
      pruned_secs = wp.elapsed_seconds();
    }

    Stopwatch wh;
    const LearnResult h1 = learn_heuristic(trace, 1);
    const double heur_secs = wh.elapsed_seconds();

    if (!exact_ok) {
      table.add_row({cfg.name, std::to_string(trace.total_messages()),
                     "frontier>2e6", "-", "-", "-",
                     format_double(heur_secs, 4), "-", "-"});
      continue;
    }
    const DependencyMatrix elub = exact.lub();
    const DependencyMatrix& hm = h1.hypotheses.front();
    const char* relation = (hm == elub)        ? "equal"
                           : elub.leq(hm)      ? "heur more general"
                                               : "incomparable";
    table.add_row(
        {cfg.name, std::to_string(trace.total_messages()),
         format_double(exact_secs, 3), format_double(pruned_secs, 3),
         std::to_string(exact.stats.peak_hypotheses),
         std::to_string(exact.hypotheses.size()),
         format_double(heur_secs, 4),
         format_double(heur_secs > 0 ? exact_secs / heur_secs : 0.0, 0) + "x",
         relation});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The GM-scale attempt: demonstrates the NP-hard blow-up on our
  // (higher-concurrency) platform traces.
  if (bench::full_scale()) {
    std::printf("GM-scale exact attempt (BBMG_FULL=1):\n");
    const Trace gm = bench::gm_trace();
    ExactConfig exact_cfg;
    exact_cfg.max_frontier = 4'000'000;
    Stopwatch w;
    try {
      const LearnResult r = learn_exact(gm, exact_cfg);
      std::printf("  completed in %.1f s with %zu hypotheses\n",
                  w.elapsed_seconds(), r.hypotheses.size());
    } catch (const Error& e) {
      std::printf("  aborted after %.1f s: %s\n", w.elapsed_seconds(),
                  e.what());
    }
  } else {
    std::printf("GM-scale exact attempt skipped (the frontier exceeds "
                "millions of hypotheses\ninside period 1 on our simulated "
                "trace; run with BBMG_FULL=1 to reproduce\nthe abort).  See "
                "EXPERIMENTS.md for the discussion of why the paper's\n"
                "proprietary trace admitted a 631 s exact run.\n");
  }
  return 0;
}
