// Experiment E8 — robustness of the ingestion pipeline (src/robust):
//   (a) lenient-loader overhead on *clean* input vs the strict reader
//       (acceptance: < 5%),
//   (b) sanitizer throughput in events/second,
//   (c) quarantine-rate / repair / model-degradation curves vs the injected
//       fault rate, with the soundness property checked at every point
//       (refuted_claims must be 0: the learned model never asserts a
//       requirement the clean trace refutes).
// Output is a single JSON document so the curves can be plotted directly.
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/online_learner.hpp"
#include "robust/fault_injector.hpp"
#include "robust/lenient_loader.hpp"
#include "robust/robust_online_learner.hpp"
#include "robust/sanitizer.hpp"
#include "trace/serialize.hpp"

using namespace bbmg;

namespace {

std::vector<std::vector<bool>> executed_masks(const Trace& t) {
  std::vector<std::vector<bool>> masks;
  for (const Period& p : t.periods()) {
    std::vector<bool> m(t.num_tasks(), false);
    for (const auto& e : p.executions()) m[e.task.index()] = true;
    masks.push_back(std::move(m));
  }
  return masks;
}

std::size_t count_refuted_claims(const DependencyMatrix& model,
                                 const std::vector<std::vector<bool>>& ran) {
  std::size_t refuted = 0;
  for (std::size_t a = 0; a < model.num_tasks(); ++a) {
    for (std::size_t b = 0; b < model.num_tasks(); ++b) {
      if (a == b) continue;
      const DepValue v = model.at(a, b);
      if (!dep_requires_forward(v) && !dep_requires_backward(v)) continue;
      for (const auto& mask : ran) {
        if (mask[a] && !mask[b]) {
          ++refuted;
          break;
        }
      }
    }
  }
  return refuted;
}

/// Best-of-k wall time of `fn`, in milliseconds.
template <typename Fn>
double best_ms(std::size_t k, Fn&& fn) {
  double best = 1e300;
  for (std::size_t i = 0; i < k; ++i) {
    Stopwatch w;
    fn();
    best = std::min(best, w.elapsed_ms());
  }
  return best;
}

}  // namespace

int main() {
  const bool full = bench::full_scale();
  const std::size_t periods = full ? 108 : kGmCaseStudyPeriods;
  const std::size_t reps = full ? 30 : 12;

  const Trace clean = bench::gm_trace(7, periods);
  const std::string text = trace_to_string(clean);
  const auto raw = to_raw_periods(clean);
  const auto ran = executed_masks(clean);
  const std::size_t total_events =
      2 * (clean.total_executions() + clean.total_messages());

  // (a) Loader overhead on clean input.  The two paths are interleaved and
  // best-of-N taken with a generous N: the question is the cost of the code
  // path, not which measurement window the scheduler disturbed.
  const std::size_t loader_reps = 3 * reps;
  double strict_ms = 1e300;
  double lenient_ms = 1e300;
  for (std::size_t i = 0; i < loader_reps; ++i) {
    strict_ms =
        std::min(strict_ms, best_ms(1, [&] { (void)trace_from_string(text); }));
    lenient_ms = std::min(lenient_ms,
                          best_ms(1, [&] { (void)ingest_trace_string(text); }));
  }
  const double overhead_pct = 100.0 * (lenient_ms - strict_ms) / strict_ms;

  // (b) Sanitizer throughput (repair policy, clean stream).
  const TraceSanitizer sanitizer(clean.task_names());
  const double sanitize_ms = best_ms(reps, [&] { (void)sanitizer.sanitize(raw); });
  const double events_per_sec =
      static_cast<double>(total_events) / (sanitize_ms / 1e3);

  // Clean reference model for the degradation curves.
  OnlineLearner reference(clean.num_tasks(), OnlineConfig{});
  for (const Period& p : clean.periods()) reference.observe_period(p);
  const std::uint64_t clean_weight = reference.snapshot().lub().weight();

  // (c) Quarantine / degradation curves, 3 seeds per rate.
  const std::vector<double> rates = {0.0, 0.01, 0.02, 0.05, 0.10, 0.20};
  const std::vector<std::uint64_t> seeds = {1, 2, 3};
  std::ostringstream curves;
  bool first = true;
  for (const double rate : rates) {
    double quarantine_rate = 0.0;
    std::size_t repairs = 0, defects = 0, faults = 0, refuted = 0;
    std::uint64_t weight_sum = 0;
    std::string health;
    for (const std::uint64_t seed : seeds) {
      FaultInjector injector(FaultSpec::uniform(rate, seed));
      const InjectionResult inj = injector.corrupt(clean);
      RobustOnlineLearner learner(clean.task_names(), RobustConfig{});
      for (const auto& events : inj.periods) {
        (void)learner.observe_raw_period(events);
      }
      quarantine_rate += learner.quarantine_rate();
      repairs += learner.repairs();
      defects += learner.defects().size();
      faults += inj.faults_injected;
      const DependencyMatrix model = learner.snapshot().lub();
      refuted += count_refuted_claims(model, ran);
      weight_sum += model.weight();
      health = health_state_name(learner.health());
    }
    const double k = static_cast<double>(seeds.size());
    curves << (first ? "" : ",\n")
           << "    {\"fault_rate\": " << rate
           << ", \"quarantine_rate\": " << quarantine_rate / k
           << ", \"repairs\": " << static_cast<double>(repairs) / k
           << ", \"defects\": " << static_cast<double>(defects) / k
           << ", \"faults_injected\": " << static_cast<double>(faults) / k
           << ", \"model_weight\": "
           << static_cast<double>(weight_sum) / k
           << ", \"refuted_claims\": " << refuted
           << ", \"health\": \"" << health << "\"}";
    first = false;
  }

  std::printf("{\n");
  std::printf("  \"bench\": \"robustness\",\n");
  std::printf("  \"trace\": {\"tasks\": %zu, \"periods\": %zu, "
              "\"messages\": %zu, \"events\": %zu},\n",
              clean.num_tasks(), clean.num_periods(),
              clean.total_messages(), total_events);
  std::printf("  \"loader\": {\"strict_ms\": %.3f, \"lenient_ms\": %.3f, "
              "\"overhead_pct\": %.2f},\n",
              strict_ms, lenient_ms, overhead_pct);
  std::printf("  \"sanitizer\": {\"sanitize_ms\": %.3f, "
              "\"events_per_sec\": %.0f},\n",
              sanitize_ms, events_per_sec);
  std::printf("  \"clean_model_weight\": %llu,\n",
              static_cast<unsigned long long>(clean_weight));
  std::printf("  \"curves\": [\n%s\n  ]\n", curves.str().c_str());
  std::printf("}\n");
  return 0;
}
