// Micro-benchmarks (google-benchmark) of the primitives the learners are
// built from: lattice operations, matrix joins, candidate extraction,
// matching, simulation and one full learner run at small scale.
#include <benchmark/benchmark.h>

#include "analysis/conformance.hpp"
#include "core/candidates.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

namespace bbmg {
namespace {

void BM_DepLub(benchmark::State& state) {
  std::size_t i = 0;
  for (auto _ : state) {
    const DepValue a = kAllDepValues[i % kNumDepValues];
    const DepValue b = kAllDepValues[(i / kNumDepValues) % kNumDepValues];
    benchmark::DoNotOptimize(dep_lub(a, b));
    ++i;
  }
}
BENCHMARK(BM_DepLub);

void BM_MatrixLub(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  DependencyMatrix a(n);
  DependencyMatrix b = DependencyMatrix::top(n);
  for (std::size_t i = 0; i + 1 < n; ++i) a.set_pair(i, i + 1, DepValue::Forward);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.lub(b));
  }
}
BENCHMARK(BM_MatrixLub)->Arg(4)->Arg(18)->Arg(64);

void BM_MatrixWeight(benchmark::State& state) {
  const DependencyMatrix m = DependencyMatrix::top(18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.weight());
  }
}
BENCHMARK(BM_MatrixWeight);

void BM_CandidateExtraction(benchmark::State& state) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(), 1, cfg);
  const Period& period = trace.periods()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(PeriodCandidates(period, trace.num_tasks()));
  }
}
BENCHMARK(BM_CandidateExtraction);

void BM_MatchingOracle(benchmark::State& state) {
  const Trace trace = paper_example_trace();
  const DependencyMatrix d = learn_heuristic(trace, 1).lub();
  for (auto _ : state) {
    benchmark::DoNotOptimize(matches_trace(d, trace));
  }
}
BENCHMARK(BM_MatchingOracle);

void BM_SimulateGmPeriod(benchmark::State& state) {
  const SystemModel model = gm_case_study_model();
  SimConfig cfg;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(simulate_trace(model, 1, cfg));
  }
}
BENCHMARK(BM_SimulateGmPeriod);

void BM_ConformanceCheckGm(benchmark::State& state) {
  SimConfig cfg;
  cfg.seed = 7;
  const Trace trace = simulate_trace(gm_case_study_model(), 5, cfg);
  const DependencyMatrix model = learn_heuristic(trace, 8).lub();
  for (auto _ : state) {
    benchmark::DoNotOptimize(check_conformance(model, trace));
  }
}
BENCHMARK(BM_ConformanceCheckGm);

void BM_LearnPaperTrace(benchmark::State& state) {
  const Trace trace = paper_example_trace();
  const std::size_t bound = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(learn_heuristic(trace, bound));
  }
}
BENCHMARK(BM_LearnPaperTrace)->Arg(1)->Arg(8)->Arg(64);

}  // namespace
}  // namespace bbmg

BENCHMARK_MAIN();
