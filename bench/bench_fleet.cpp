// Experiment E13 — fleet-scale serving (src/fleet):
//
// A real bbmg_served process (spawned through the ShardSupervisor, exactly
// as an operator would run it) under a closed-loop fleet of heterogeneous
// simulated deployments streaming concurrently.  One cell per fleet size;
// each cell reports the scaling curve inputs — sessions opened, periods
// and events pushed, wall time, events/s, peak client-side unacked buffer
// (the client half of the queue-depth picture) and retry count — and
// cross-checks a deterministic sample of sessions byte-for-byte against
// offline replay of the same seeded traces.  A verification mismatch
// fails the bench (exit 1): throughput numbers for a serving stack that
// corrupts models are not results.
//
// Quick mode tops out at a 200-deployment fleet; BBMG_FULL=1 runs the
// 1000-deployment acceptance cell.  Output is one JSON document, printed
// and written to BENCH_fleet.json.
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "cluster/supervisor.hpp"
#include "fleet/driver.hpp"

#ifndef BBMG_SERVED_BIN
#error "BBMG_SERVED_BIN must point at the bbmg_served executable"
#endif

using namespace bbmg;

namespace {

namespace fs = std::filesystem;

std::string fresh_dir() {
  const std::string dir =
      (fs::temp_directory_path() / "bbmg_bench_fleet").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Cell {
  std::size_t fleet{0};
  fleet::ArrivalShape shape{fleet::ArrivalShape::Steady};
  fleet::FleetReport report;
};

const char* shape_name(fleet::ArrivalShape s) {
  switch (s) {
    case fleet::ArrivalShape::Steady: return "steady";
    case fleet::ArrivalShape::Ramp: return "ramp";
    case fleet::ArrivalShape::FlashCrowd: return "flash";
  }
  return "?";
}

}  // namespace

int main() {
  const bool full = bench::full_scale();
  bench::heading("E13: closed-loop fleet vs a live bbmg_served");

  // One real server process: single shard, no follower, relaxed fsync so
  // the disk is not the variable under test.
  cluster::SupervisorConfig sup;
  sup.served_bin = BBMG_SERVED_BIN;
  sup.root_dir = fresh_dir();
  sup.shards = 1;
  sup.followers = false;
  sup.workers = 4;
  sup.queue_capacity = 256;
  sup.fsync_every = 256;
  cluster::ShardSupervisor supervisor(sup);
  supervisor.start();
  const cluster::Endpoint endpoint = supervisor.map().shards[0].primary;

  std::vector<std::size_t> fleets = full
                                        ? std::vector<std::size_t>{100, 250,
                                                                   500, 1000}
                                        : std::vector<std::size_t>{50, 100,
                                                                   200};
  std::vector<Cell> cells;
  bool all_verified = true;

  for (const std::size_t fleet_size : fleets) {
    Cell cell;
    cell.fleet = fleet_size;
    // The acceptance cell rides the flash-crowd shape: nearly the whole
    // fleet concurrently mid-stream is the stress the tentpole names.
    cell.shape = fleet_size >= 1000 ? fleet::ArrivalShape::FlashCrowd
                                    : fleet::ArrivalShape::Steady;

    fleet::FleetConfig config;
    config.deployments = fleet_size;
    config.periods = 3;
    config.pumps = 8;
    config.shape = cell.shape;
    config.seed = 42 + fleet_size;
    config.host = endpoint.host;
    config.port = endpoint.port;
    config.retry.retry_budget_ms = 30000;
    // Sample ~32 sessions per cell: enough for the byte-identity claim,
    // cheap enough that verification does not dominate the wall time.
    config.verify_fraction =
        std::min(1.0, 32.0 / static_cast<double>(fleet_size));

    cell.report = fleet::run_fleet(config);
    std::printf("fleet %4zu (%s): %6llu periods %8llu events in %6.2fs "
                "-> %8.0f ev/s, unacked<=%llu, verified %zu/%zu ok=%d\n",
                fleet_size, shape_name(cell.shape),
                static_cast<unsigned long long>(cell.report.periods_sent),
                static_cast<unsigned long long>(cell.report.events_sent),
                cell.report.wall_seconds, cell.report.events_per_sec,
                static_cast<unsigned long long>(cell.report.peak_unacked),
                cell.report.verified - cell.report.verify_failures,
                cell.report.verified, cell.report.ok() ? 1 : 0);
    for (const std::string& d : cell.report.failure_details) {
      std::printf("  MISMATCH %s\n", d.c_str());
    }
    for (const std::string& e : cell.report.pump_errors) {
      std::printf("  ERROR %s\n", e.c_str());
    }
    all_verified = all_verified && cell.report.ok();
    cells.push_back(cell);
  }

  const int server_exit = supervisor.terminate_all();

  std::ostringstream doc;
  doc << "{\n  \"experiment\": \"E13-fleet\",\n";
  doc << "  \"full_scale\": " << (full ? "true" : "false") << ",\n";
  doc << "  \"server\": {\"workers\": " << sup.workers
      << ", \"queue_capacity\": " << sup.queue_capacity
      << ", \"fsync_every\": " << sup.fsync_every << "},\n";
  doc << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    const fleet::FleetReport& r = c.report;
    doc << "    {\"fleet\": " << c.fleet << ", \"shape\": \""
        << shape_name(c.shape) << "\", \"sessions\": " << r.sessions
        << ", \"periods_sent\": " << r.periods_sent
        << ", \"events_sent\": " << r.events_sent
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"periods_per_sec\": " << r.periods_per_sec
        << ", \"events_per_sec\": " << r.events_per_sec
        << ", \"peak_unacked\": " << r.peak_unacked
        << ", \"client_retries\": " << r.client_retries
        << ", \"verified\": " << r.verified
        << ", \"verify_failures\": " << r.verify_failures
        << ", \"pump_errors\": " << r.pump_errors.size() << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  doc << "  ],\n";
  doc << "  \"server_exit\": " << server_exit << ",\n";
  doc << "  \"all_verified\": " << (all_verified ? "true" : "false") << "\n";
  doc << "}\n";

  std::printf("%s", doc.str().c_str());
  if (std::FILE* f = std::fopen("BENCH_fleet.json", "w")) {
    std::fputs(doc.str().c_str(), f);
    std::fclose(f);
  }
  return all_verified && server_exit == 0 ? 0 : 1;
}
