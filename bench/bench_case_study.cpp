// Experiment E4 — the GM case study (paper §3.4, Fig. 5).
//
// Simulates the 18-task distributed controller for 27 periods on the
// OSEK+CAN substrate, learns the dependency model from the bus trace, and
// re-derives every property the paper reports:
//   * A and B are disjunction nodes (confirmed knowledge);
//   * H, P and Q are conjunction nodes (learned);
//   * d(A,L) = -> and d(B,M) = -> (mode-independent execution);
//   * the Q-O dependency induced by the CAN/OSEK infrastructure, absent
//     from the design model;
// and emits the dependency graph as Graphviz (fig5.dot).
#include <cstdio>
#include <fstream>

#include "analysis/compare.hpp"
#include "analysis/dependency_graph.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "model/design_truth.hpp"
#include "sim/simulator.hpp"

using namespace bbmg;

int main() {
  bench::heading("E4: GM case study (paper §3.4, Fig. 5)");

  const SystemModel model = gm_case_study_model();
  SimConfig sim_cfg;
  sim_cfg.seed = 7;
  const SimReport sim = simulate(model, kGmCaseStudyPeriods, sim_cfg);

  TextTable scale({"Metric", "Ours", "Paper"});
  scale.add_row({"tasks", std::to_string(sim.trace.num_tasks()), "18"});
  scale.add_row({"periods", std::to_string(sim.trace.num_periods()), "27"});
  scale.add_row({"messages", std::to_string(sim.trace.total_messages()), "330"});
  scale.add_row({"event pairs", std::to_string(sim.trace.total_event_pairs()),
                 "~700"});
  scale.add_row({"ECUs", std::to_string(model.num_ecus()), "n/a (one CAN bus)"});
  scale.add_row({"preemptions", std::to_string(sim.preemptions), "n/a"});
  std::printf("%s\n", scale.to_string().c_str());

  const LearnResult result = learn_heuristic(sim.trace, 32);
  std::printf("heuristic learner, bound 32: %zu hypothesis(es), %.3f s, "
              "converged: %s\n\n",
              result.hypotheses.size(), result.stats.wall_seconds,
              result.converged() ? "yes" : "no");

  const DependencyMatrix learned = result.lub();
  const DependencyGraph graph(learned, sim.trace.task_names());

  TextTable props({"Property (paper §3.4)", "Expected", "Learned"});
  auto role_str = [&](const char* name) {
    switch (graph.role(graph.by_name(name))) {
      case NodeRole::Disjunction: return "disjunction";
      case NodeRole::Conjunction: return "conjunction";
      case NodeRole::Both: return "both";
      case NodeRole::Plain: return "plain";
    }
    return "?";
  };
  props.add_row({"task A is a disjunction node", "disjunction", role_str("A")});
  props.add_row({"task B is a disjunction node", "disjunction", role_str("B")});
  props.add_row({"task H is a conjunction node", "conjunction", role_str("H")});
  props.add_row({"task P is a conjunction node", "conjunction", role_str("P")});
  props.add_row({"task Q is a conjunction node", "conjunction", role_str("Q")});
  auto dep_str = [&](const char* a, const char* b) {
    return std::string(
        dep_to_string(graph.value(graph.by_name(a), graph.by_name(b))));
  };
  props.add_row({"d(A,L): L runs in every A mode", "->", dep_str("A", "L")});
  props.add_row({"d(B,M): M runs in every B mode", "->", dep_str("B", "M")});
  props.add_row({"d(Q,O): infrastructure dependency", "not ||",
                 dep_str("Q", "O")});
  std::printf("%s\n", props.to_string().c_str());

  // Dependencies beyond the design model (the paper's motivation: the
  // learner sees what the execution environment adds).
  const DependencyMatrix design = design_dependency(model);
  const auto emergent = emergent_pairs(design, learned);
  const MatrixComparison cmp = compare_matrices(design, learned);
  std::printf("design vs learned: %zu/%zu ordered pairs identical, "
              "%zu pairs raised beyond the design\n",
              cmp.equal, cmp.total_pairs, emergent.size());
  std::size_t shown = 0;
  for (const auto& [a, b] : emergent) {
    if (learned.at(a, b) != DepValue::Forward &&
        learned.at(a, b) != DepValue::Backward) {
      continue;  // list only the hard emergent requirements
    }
    if (shown == 0) std::printf("hard emergent requirements:\n");
    if (++shown > 12) {
      std::printf("  ...\n");
      break;
    }
    std::printf("  d(%s,%s) = %s\n", graph.name(a).c_str(),
                graph.name(b).c_str(),
                std::string(dep_to_string(learned.at(a, b))).c_str());
  }

  std::ofstream dot("fig5.dot");
  dot << graph.to_dot();
  std::printf("\ndependency graph written to fig5.dot (%zu tasks)\n",
              graph.num_tasks());
  return 0;
}
