// Experiment E6 — empirical complexity of the heuristic learner against
// the paper's O(m*b^2 + m*b*t^2) claim (§4): runtime should be ~linear in
// the number of messages m (trace length), superlinear (~quadratic) in the
// bound b, and grow with the task count t.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"
#include "sim/simulator.hpp"

using namespace bbmg;

namespace {

double time_learn(const Trace& trace, std::size_t bound) {
  Stopwatch w;
  (void)learn_heuristic(trace, bound);
  return w.elapsed_seconds();
}

}  // namespace

int main() {
  bench::heading("E6: heuristic complexity shape, O(m b^2 + m b t^2)");

  // (a) linear in m: grow the number of periods of the GM trace.
  {
    TextTable table({"Periods", "Messages m", "Time (s)", "Time/msg (ms)"});
    for (std::size_t periods : {9, 18, 27, 54, 108}) {
      const Trace trace = bench::gm_trace(7, periods);
      const double secs = time_learn(trace, 16);
      table.add_row({std::to_string(periods),
                     std::to_string(trace.total_messages()),
                     format_double(secs, 3),
                     format_double(1e3 * secs / trace.total_messages(), 3)});
    }
    std::printf("(a) runtime vs trace length (bound 16) — time/msg should "
                "be ~flat:\n%s\n", table.to_string().c_str());
  }

  // (b) quadratic-ish in b.
  {
    const Trace trace = bench::gm_trace();
    TextTable table({"Bound b", "Time (s)", "Time/b (ms)"});
    for (std::size_t b : {2, 4, 8, 16, 32, 64}) {
      const double secs = time_learn(trace, b);
      table.add_row({std::to_string(b), format_double(secs, 3),
                     format_double(1e3 * secs / b, 2)});
    }
    std::printf("(b) runtime vs bound — time/b should grow ~linearly "
                "(=> ~b^2 total):\n%s\n", table.to_string().c_str());
  }

  // (c) growth in t: random models of growing size, fixed periods/bound.
  {
    TextTable table({"Tasks t", "Messages m", "Time (s)", "Time/(m) (ms)"});
    for (std::size_t t : {8, 12, 16, 24, 32}) {
      RandomModelParams params;
      params.num_tasks = t;
      params.num_layers = 4;
      params.num_ecus = 3;
      params.seed = 17;
      SimConfig cfg;
      cfg.seed = 23;
      cfg.period_length = 400 * kTimeNsPerMs;  // room for bigger systems
      const Trace trace = simulate_trace(random_model(params), 20, cfg);
      const double secs = time_learn(trace, 16);
      table.add_row({std::to_string(t), std::to_string(trace.total_messages()),
                     format_double(secs, 3),
                     format_double(1e3 * secs / trace.total_messages(), 3)});
    }
    std::printf("(c) runtime vs task count (bound 16, 20 periods) — "
                "time/msg grows with t (the t^2 term):\n%s\n",
                table.to_string().c_str());
  }
  return 0;
}
