// Experiment E10 — cost of the observability layer (src/obs):
//   (a) per-primitive costs: a relaxed counter inc (uncontended and 4-way
//       contended), a histogram observe, and an RAII span with the span
//       ring off and on,
//   (b) end-to-end: ingest GM-trace replays through the serving pipeline
//       (SessionManager, 1 worker) and attribute the measured per-op costs
//       to the metric operations the run actually performed (registry
//       value delta).  The instrumentation share of the ingest wall time
//       must stay below the 2% overhead budget (DESIGN.md, Observability).
//   (c) causal tracing on: the same ingest with every period carrying a
//       trace context (span ring enabled, server stages recording child
//       spans, as under `bbmg_served --trace`).  The attributed span cost
//       must stay below a 1% share of the traced ingest wall time.
// In a -DBBMG_OBS=OFF build the primitives compile to no-ops; the bench
// still runs, reports ~zero costs and "enabled": false, and the budget
// check passes trivially.  Output goes to stdout and BENCH_obs.json.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/trace_context.hpp"
#include "serve/session_manager.hpp"

using namespace bbmg;

namespace {

constexpr double kBudgetPct = 2.0;
/// Tighter budget for the causal-tracing path: spans are per-stage, not
/// per-metric-op, so the ceiling is 1% of the traced ingest wall time.
constexpr double kTraceBudgetPct = 1.0;

/// ns per iteration of `body`, amortized over `iters` calls.
template <typename Body>
double time_ns_per_op(std::size_t iters, Body&& body) {
  Stopwatch w;
  for (std::size_t i = 0; i < iters; ++i) body(i);
  return w.elapsed_ms() * 1e6 / static_cast<double>(iters);
}

double contended_counter_ns(obs::Counter& counter, std::size_t threads,
                            std::size_t iters_per_thread) {
  Stopwatch w;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < iters_per_thread; ++i) counter.inc();
    });
  }
  for (auto& t : pool) t.join();
  return w.elapsed_ms() * 1e6 /
         static_cast<double>(threads * iters_per_thread);
}

std::map<std::string, std::uint64_t> value_map(
    const obs::MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> m;
  for (const obs::CounterSample& c : snap.counters) m[c.name] = c.value;
  for (const obs::HistogramSample& h : snap.histograms) m[h.name] = h.count;
  return m;
}

/// Metric operations between two snapshots: counter increments plus
/// histogram observes (each observe is ~3 relaxed adds, priced separately).
struct OpDelta {
  std::uint64_t counter_ops = 0;
  std::uint64_t histogram_ops = 0;
};

OpDelta ops_between(const obs::MetricsSnapshot& before,
                    const obs::MetricsSnapshot& after) {
  const auto b = value_map(before);
  OpDelta d;
  for (const obs::CounterSample& c : after.counters) {
    const auto it = b.find(c.name);
    d.counter_ops += c.value - (it == b.end() ? 0 : it->second);
  }
  for (const obs::HistogramSample& h : after.histograms) {
    const auto it = b.find(h.name);
    d.histogram_ops += h.count - (it == b.end() ? 0 : it->second);
  }
  return d;
}

}  // namespace

int main() {
  const bool full = bench::full_scale();
  const std::size_t micro_iters = full ? 50'000'000 : 5'000'000;

  bench::heading("E10: observability overhead (BBMG_OBS=" +
                 std::string(obs::kEnabled ? "ON" : "OFF") + ")");

  // ---- (a) per-primitive micro costs -------------------------------------
  obs::MetricsRegistry bench_registry;
  obs::Counter& counter = bench_registry.counter("bench_counter_total");
  obs::Counter& shared = bench_registry.counter("bench_contended_total");
  obs::Histogram& hist = bench_registry.histogram(
      "bench_latency_us", obs::default_latency_buckets_us());

  const double counter_ns =
      time_ns_per_op(micro_iters, [&](std::size_t) { counter.inc(); });
  const double contended_ns =
      contended_counter_ns(shared, 4, micro_iters / 4);
  const double observe_ns = time_ns_per_op(
      micro_iters, [&](std::size_t i) { hist.observe(i & 1023); });
  obs::SpanRing::instance().set_enabled(false);
  const double span_ns = time_ns_per_op(
      micro_iters / 8, [&](std::size_t) { obs::Span s(&hist, "bench.span"); });
  obs::SpanRing::instance().set_enabled(true);
  const double span_ring_ns = time_ns_per_op(
      micro_iters / 64, [&](std::size_t) { obs::Span s(&hist, "bench.span"); });
  obs::SpanRing::instance().set_enabled(false);
  obs::SpanRing::instance().clear();

  std::printf("counter.inc            %8.2f ns/op\n", counter_ns);
  std::printf("counter.inc contended4 %8.2f ns/op\n", contended_ns);
  std::printf("histogram.observe      %8.2f ns/op\n", observe_ns);
  std::printf("span (ring off)        %8.2f ns/op\n", span_ns);
  std::printf("span (ring on)         %8.2f ns/op\n", span_ring_ns);

  // ---- (b) end-to-end ingest attribution ---------------------------------
  const Trace trace = bench::gm_trace(7);
  std::vector<std::vector<Event>> periods;
  std::size_t events_total = 0;
  for (const Period& p : trace.periods()) {
    periods.push_back(p.to_events());
    events_total += periods.back().size();
  }
  const std::size_t rounds = full ? 256 : 64;

  ManagerConfig config;
  config.workers = 1;
  SessionManager manager(config);
  const SessionId id = manager.open_session(trace.task_names());

  const obs::MetricsSnapshot before = obs::MetricsRegistry::instance().snapshot();
  Stopwatch ingest;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& evs : periods) {
      (void)manager.submit(id, evs, /*block=*/true);
    }
  }
  manager.drain(id);
  const double ingest_ms = ingest.elapsed_ms();
  const obs::MetricsSnapshot after = obs::MetricsRegistry::instance().snapshot();
  manager.stop();

  const OpDelta ops = ops_between(before, after);
  // Gauge traffic (queue depth add+sub per submitted period) never shows in
  // a snapshot delta (it nets to zero); price it explicitly at counter cost.
  const std::uint64_t gauge_ops = 2 * rounds * periods.size();
  const double overhead_ns =
      static_cast<double>(ops.counter_ops + gauge_ops) * counter_ns +
      static_cast<double>(ops.histogram_ops) * observe_ns;
  const double overhead_pct =
      obs::kEnabled ? overhead_ns / (ingest_ms * 1e6) * 100.0 : 0.0;
  const double events_per_sec =
      static_cast<double>(events_total * rounds) / (ingest_ms / 1e3);

  std::printf("\ningest: %zu periods (%zu events) in %.1f ms — %.0f events/s\n",
              rounds * periods.size(), events_total * rounds, ingest_ms,
              events_per_sec);
  std::printf("metric ops: %llu counter + %llu gauge + %llu histogram\n",
              static_cast<unsigned long long>(ops.counter_ops),
              static_cast<unsigned long long>(gauge_ops),
              static_cast<unsigned long long>(ops.histogram_ops));
  std::printf("instrumentation share of ingest: %.3f%% (budget %.1f%%)\n",
              overhead_pct, kBudgetPct);

  const bool within_budget = overhead_pct < kBudgetPct;

  // ---- (c) ingest with causal tracing on ---------------------------------
  // Every period carries a freshly minted trace context, so the worker
  // records queue-wait and apply child spans per period — the PR 5 traced
  // request path minus the socket.
  obs::SpanRing& ring = obs::SpanRing::instance();
  ring.set_enabled(true);
  ring.clear();
  const std::uint64_t spans_before = ring.total_recorded();
  SessionManager traced_manager(config);
  const SessionId traced_id = traced_manager.open_session(trace.task_names());
  Stopwatch traced;
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const auto& evs : periods) {
      const obs::TraceContext ctx{obs::mint_id(), obs::mint_id()};
      (void)traced_manager.submit(traced_id, evs, /*block=*/true, /*seq=*/0,
                                  ctx);
    }
  }
  traced_manager.drain(traced_id);
  const double traced_ms = traced.elapsed_ms();
  traced_manager.stop();
  const std::uint64_t trace_spans = ring.total_recorded() - spans_before;
  ring.set_enabled(false);
  ring.clear();

  // Attribute at the measured ring-on span price (mint + record dominate),
  // the same methodology as (b) — wall-clock deltas between two ingest
  // runs drown in scheduler noise at this scale.
  const double trace_overhead_ns =
      static_cast<double>(trace_spans) * span_ring_ns;
  const double trace_pct =
      obs::kEnabled && traced_ms > 0.0
          ? trace_overhead_ns / (traced_ms * 1e6) * 100.0
          : 0.0;
  const bool trace_within_budget = trace_pct < kTraceBudgetPct;

  std::printf("\ntraced ingest: %zu periods in %.1f ms — %llu spans "
              "recorded\n",
              rounds * periods.size(), traced_ms,
              static_cast<unsigned long long>(trace_spans));
  std::printf("tracing share of ingest: %.3f%% (budget %.1f%%)\n", trace_pct,
              kTraceBudgetPct);

  std::ostringstream doc;
  doc << "{\n"
      << "  \"bench\": \"obs\",\n"
      << "  \"enabled\": " << (obs::kEnabled ? "true" : "false") << ",\n"
      << "  \"micro_ns\": {\"counter_inc\": " << counter_ns
      << ", \"counter_inc_contended4\": " << contended_ns
      << ", \"histogram_observe\": " << observe_ns
      << ", \"span_ring_off\": " << span_ns
      << ", \"span_ring_on\": " << span_ring_ns << "},\n"
      << "  \"ingest\": {\"periods\": " << rounds * periods.size()
      << ", \"events\": " << events_total * rounds
      << ", \"wall_ms\": " << ingest_ms
      << ", \"events_per_sec\": " << events_per_sec << "},\n"
      << "  \"metric_ops\": {\"counter\": " << ops.counter_ops
      << ", \"gauge\": " << gauge_ops
      << ", \"histogram\": " << ops.histogram_ops << "},\n"
      << "  \"overhead_pct\": " << overhead_pct << ",\n"
      << "  \"budget_pct\": " << kBudgetPct << ",\n"
      << "  \"within_budget\": " << (within_budget ? "true" : "false") << ",\n"
      << "  \"tracing\": {\"spans\": " << trace_spans
      << ", \"wall_ms\": " << traced_ms
      << ", \"overhead_pct\": " << trace_pct
      << ", \"budget_pct\": " << kTraceBudgetPct
      << ", \"within_budget\": " << (trace_within_budget ? "true" : "false")
      << "}\n"
      << "}\n";

  std::printf("\n%s", doc.str().c_str());
  if (std::FILE* f = std::fopen("BENCH_obs.json", "w")) {
    std::fputs(doc.str().c_str(), f);
    std::fclose(f);
  }
  return within_budget && trace_within_budget ? 0 : 1;
}
