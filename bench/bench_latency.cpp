// Experiment E5 — end-to-end latency analysis (paper §3.4).
//
// "The dependency relations that we obtained also significantly improve
// the pessimistic analysis of end-to-end latencies ... one path that was
// examined in this case study was the critical path including task Q.
// Our learning algorithm introduces an implicit dependency between task Q
// and O, which is less pessimistic ... excluding the possible preemption
// from higher priority task O during the execution of task Q."
//
// The bench prints per-task worst-case response times under (a) the
// pessimistic all-independent assumption and (b) the learned dependency
// model, then the end-to-end latency of the critical path S -> B -> F ->
// M -> Q with and without the learned model.
#include <cstdio>

#include "analysis/latency.hpp"
#include "baseline/pessimistic.hpp"
#include "bench_util.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/heuristic_learner.hpp"
#include "gen/gm_case_study.hpp"

using namespace bbmg;

int main() {
  bench::heading("E5: end-to-end latency, pessimistic vs learned "
                 "(paper §3.4)");

  const SystemModel model = gm_case_study_model();
  const Trace trace = bench::gm_trace();
  const DependencyMatrix learned = learn_heuristic(trace, 32).lub();

  const auto responses = response_times(model, learned);
  TextTable table({"Task", "WCET (us)", "R pessimistic (us)",
                   "R learned (us)", "Improvement", "Excluded preemptors"});
  for (const auto& r : responses) {
    if (r.response_pessimistic == r.wcet) continue;  // nothing above it
    std::string excluded;
    for (TaskId t : r.excluded) {
      if (!excluded.empty()) excluded += " ";
      excluded += model.task(t).name;
    }
    const double gain =
        100.0 *
        static_cast<double>(r.response_pessimistic - r.response_informed) /
        static_cast<double>(r.response_pessimistic);
    table.add_row({model.task(r.task).name,
                   std::to_string(r.wcet / kTimeNsPerUs),
                   std::to_string(r.response_pessimistic / kTimeNsPerUs),
                   std::to_string(r.response_informed / kTimeNsPerUs),
                   format_double(gain, 1) + "%",
                   excluded.empty() ? "-" : excluded});
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's critical path through Q.
  const std::vector<TaskId> path{
      model.task_by_name("S"), model.task_by_name("B"),
      model.task_by_name("F"), model.task_by_name("M"),
      model.task_by_name("Q")};
  const TimeNs pessimistic = path_latency(model, responses, path, false);
  const TimeNs informed = path_latency(model, responses, path, true);
  std::printf("critical path S->B->F->M->Q:\n");
  std::printf("  pessimistic : %llu us\n",
              static_cast<unsigned long long>(pessimistic / kTimeNsPerUs));
  std::printf("  learned     : %llu us  (%.1f%% tighter; Q no longer "
              "charged for O's preemption)\n",
              static_cast<unsigned long long>(informed / kTimeNsPerUs),
              100.0 * static_cast<double>(pessimistic - informed) /
                  static_cast<double>(pessimistic));

  // Baseline sanity: the pessimistic matrix excludes nothing.
  const auto base = response_times(model, pessimistic_baseline(18));
  bool any_excluded = false;
  for (const auto& r : base) any_excluded |= !r.excluded.empty();
  std::printf("\npessimistic baseline excludes any preemption: %s\n",
              any_excluded ? "YES (bug)" : "no (as expected)");
  return 0;
}
