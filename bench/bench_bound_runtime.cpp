// Experiment E2 — the §3.4 runtime table: heuristic learner runtime as a
// function of the bound, on a GM-scale trace (18 tasks, 27 periods, ~340
// messages).  The paper's absolute numbers come from a 2007 Pentium M
// 1.7 GHz; the reproduction targets the *shape*: growth is superlinear in
// the bound (the O(m b^2 + m b t^2) envelope) and sub-second at bound 1.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/heuristic_learner.hpp"

using namespace bbmg;

int main() {
  bench::heading("E2: heuristic runtime vs bound (paper §3.4 table)");
  const Trace trace = bench::gm_trace();
  std::printf("trace: %zu tasks, %zu periods, %zu messages, %zu event pairs\n"
              "paper: 18 tasks, 27 periods, 330 messages, 700 event pairs\n\n",
              trace.num_tasks(), trace.num_periods(), trace.total_messages(),
              trace.total_event_pairs());

  struct Row {
    std::size_t bound;
    double paper_seconds;
  };
  const Row rows[] = {{1, 0.220},  {4, 0.471},   {16, 1.202},  {32, 2.573},
                      {64, 5.899}, {100, 12.608}, {120, 16.294}, {150, 19.048}};

  TextTable table({"Bound", "Run time (sec)", "Paper (sec)", "Converged",
                   "Merges"});
  DependencyMatrix reference;
  bool bound_invariant = true;
  for (const Row& row : rows) {
    Stopwatch w;
    const LearnResult r = learn_heuristic(trace, row.bound);
    const double secs = w.elapsed_seconds();
    if (row.bound == 1) {
      reference = r.lub();
    } else if (r.lub() != reference) {
      bound_invariant = false;
    }
    table.add_row({std::to_string(row.bound), format_double(secs, 3),
                   format_double(row.paper_seconds, 3),
                   r.converged() ? "yes" : "no",
                   std::to_string(r.stats.merges)});
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("result invariant across bounds (paper Theorem 4): %s\n",
              bound_invariant ? "yes" : "NO");
  return 0;
}
