// Experiment E7 — theorem verification rates, baseline comparison, and
// convergence ablations on randomized models.
//
//   (a) Theorem 2/Lemma rates: across random scenarios where the exact
//       learner is feasible, how often is every returned hypothesis
//       correct (must be 100%), and how often does heuristic(bound 1)
//       exactly equal lub(exact) (the paper's Lemma; our reconstruction's
//       merge bookkeeping makes this the common case, not an invariant —
//       see DESIGN.md).
//   (b) Baseline comparison: information content (weight) and disagreement
//       of the pessimistic model and the naive precedence miner against
//       the version-space learner on the GM trace.
//   (c) Convergence vs trace length: hypotheses surviving and the summary
//       weight as the GM trace grows.
#include <cstdio>

#include "baseline/pessimistic.hpp"
#include "baseline/precedence_miner.hpp"
#include "bench_util.hpp"
#include "common/error.hpp"
#include "common/table.hpp"
#include "common/text.hpp"
#include "core/exact_learner.hpp"
#include "core/heuristic_learner.hpp"
#include "core/matching.hpp"
#include "gen/random_model.hpp"
#include "gen/scenarios.hpp"

using namespace bbmg;

int main() {
  bench::heading("E7: theorem rates, baselines, convergence ablations");

  // (a) theorem rates on random scenarios.
  {
    std::size_t feasible = 0;
    std::size_t thm2_ok = 0;
    std::size_t lemma_eq = 0;
    std::size_t lemma_geq = 0;
    const std::size_t seeds = 40;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      RandomModelParams params;
      params.num_tasks = 5;
      params.num_layers = 3;
      params.extra_edge_density = 0.25;
      params.seed = seed;
      const Trace trace =
          idealized_trace(random_model(params), 6, seed * 11 + 1);
      ExactConfig cfg;
      cfg.max_frontier = 100000;
      LearnResult exact;
      try {
        exact = learn_exact(trace, cfg);
      } catch (const Error&) {
        continue;
      }
      ++feasible;
      bool all_match = true;
      for (const auto& h : exact.hypotheses) {
        all_match &= matches_trace(h, trace);
      }
      const LearnResult h1 = learn_heuristic(trace, 1);
      all_match &= matches_trace(h1.hypotheses.front(), trace);
      thm2_ok += all_match;
      const DependencyMatrix elub = exact.lub();
      lemma_eq += (h1.hypotheses.front() == elub);
      lemma_geq += elub.leq(h1.hypotheses.front());
    }
    std::printf("(a) random scenarios (%zu/%zu exact-feasible):\n", feasible,
                static_cast<std::size_t>(seeds));
    std::printf("    Theorem 2 (all hypotheses correct) : %zu/%zu\n",
                thm2_ok, feasible);
    std::printf("    Lemma, heur(1) == lub(exact)       : %zu/%zu\n",
                lemma_eq, feasible);
    std::printf("    Lemma, heur(1) >= lub(exact)       : %zu/%zu\n\n",
                lemma_geq, feasible);
  }

  // (b) baselines on the GM trace.
  {
    const Trace trace = bench::gm_trace();
    const DependencyMatrix learned = learn_heuristic(trace, 32).lub();
    const DependencyMatrix mined = mine_precedence(trace);
    const DependencyMatrix top = pessimistic_baseline(trace.num_tasks());

    TextTable table({"Model", "Weight", "|| pairs", "-> pairs",
                     "Matches trace", "vs learned: equal pairs"});
    auto row = [&](const char* name, const DependencyMatrix& m) {
      std::size_t equal = 0;
      for (std::size_t a = 0; a < m.num_tasks(); ++a) {
        for (std::size_t b = 0; b < m.num_tasks(); ++b) {
          if (a != b && m.at(a, b) == learned.at(a, b)) ++equal;
        }
      }
      table.add_row({name, std::to_string(m.weight()),
                     std::to_string(m.count_value(DepValue::Parallel)),
                     std::to_string(m.count_value(DepValue::Forward)),
                     matches_trace(m, trace) ? "yes" : "NO",
                     std::to_string(equal)});
    };
    row("version-space learner (b=32)", learned);
    row("precedence miner", mined);
    row("pessimistic (all <->?)", top);
    std::printf("(b) baselines on the GM trace (lower weight = more "
                "information):\n%s", table.to_string().c_str());
    std::printf("    note: the miner claims temporal order as dependency "
                "(unsound in\n    general) and cannot see modes; the "
                "pessimistic model carries zero\n    information.\n\n");
  }

  // (c) convergence vs trace length.
  {
    TextTable table({"Periods", "Hypotheses", "Summary weight",
                     "d(A,L)", "d(Q,O)"});
    for (std::size_t periods : {3, 6, 12, 27, 54}) {
      const Trace trace = bench::gm_trace(7, periods);
      const LearnResult r = learn_heuristic(trace, 16);
      const DependencyMatrix lub = r.lub();
      const TaskId A = trace.task_by_name("A");
      const TaskId L = trace.task_by_name("L");
      const TaskId Q = trace.task_by_name("Q");
      const TaskId O = trace.task_by_name("O");
      table.add_row({std::to_string(periods),
                     std::to_string(r.hypotheses.size()),
                     std::to_string(lub.weight()),
                     std::string(dep_to_string(lub.at(A, L))),
                     std::string(dep_to_string(lub.at(Q, O)))});
    }
    std::printf("(c) convergence vs trace length (bound 16) — the summary "
                "weight grows as\n    more behaviours are exhibited, then "
                "stabilizes:\n%s", table.to_string().c_str());
  }
  return 0;
}
