// Experiment E9 — the concurrent serving layer (src/serve):
//   (a) ingestion throughput in events/second through the SessionManager
//       (bounded shard queues + worker pool), as a function of the worker
//       count (1/2/4) and the number of concurrent sessions (1/4/8),
//   (b) model-query latency (p50/p99) measured *while ingestion runs*, the
//       property the copy-on-snapshot design buys: queries never wait for
//       the learner.
// Every cell also re-checks the determinism contract: the served dLUB
// weight must equal the offline single-threaded learner's.
// Output is one JSON document, printed and also written to
// BENCH_serve.json so the scaling curves can be plotted directly.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/stopwatch.hpp"
#include "core/heuristic_learner.hpp"
#include "serve/session_manager.hpp"

using namespace bbmg;

namespace {

struct Cell {
  std::size_t workers = 0;
  std::size_t sessions = 0;
  std::size_t events = 0;
  double ingest_ms = 0.0;
  double events_per_sec = 0.0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
  std::size_t query_samples = 0;
  bool deterministic = false;
};

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(idx, sorted_us.size() - 1)];
}

/// One (workers, sessions) measurement.  Each session gets its own producer
/// thread replaying `rounds` copies of the GM trace; a dedicated query
/// thread hammers round-robin model queries for the whole ingest window.
Cell run_cell(const Trace& trace, std::size_t workers, std::size_t sessions,
              std::size_t rounds, std::uint64_t offline_weight) {
  std::vector<std::vector<Event>> periods;
  for (const Period& p : trace.periods()) periods.push_back(p.to_events());
  std::size_t events_per_round = 0;
  for (const auto& evs : periods) events_per_round += evs.size();

  ManagerConfig config;
  config.workers = workers;
  config.queue_capacity = 256;
  SessionManager manager(config);

  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < sessions; ++s) {
    ids.push_back(manager.open_session(trace.task_names()));
  }

  std::atomic<bool> ingesting{true};
  std::vector<double> latencies_us;
  std::thread querier([&] {
    std::size_t next = 0;
    while (ingesting.load(std::memory_order_relaxed) ||
           latencies_us.size() < 200) {
      Stopwatch w;
      (void)manager.query(ids[next % ids.size()]);
      latencies_us.push_back(w.elapsed_ms() * 1e3);
      ++next;
      if (latencies_us.size() >= 100000) break;  // plenty of samples
    }
  });

  Stopwatch ingest;
  std::vector<std::thread> producers;
  for (std::size_t s = 0; s < sessions; ++s) {
    producers.emplace_back([&, s] {
      for (std::size_t r = 0; r < rounds; ++r) {
        for (const auto& evs : periods) {
          (void)manager.submit(ids[s], evs, /*block=*/true);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (const SessionId id : ids) manager.drain(id);
  const double ingest_ms = ingest.elapsed_ms();
  ingesting.store(false, std::memory_order_relaxed);
  querier.join();

  Cell cell;
  cell.workers = workers;
  cell.sessions = sessions;
  cell.events = events_per_round * rounds * sessions;
  cell.ingest_ms = ingest_ms;
  cell.events_per_sec =
      static_cast<double>(cell.events) / (ingest_ms / 1e3);
  std::sort(latencies_us.begin(), latencies_us.end());
  cell.query_p50_us = percentile(latencies_us, 0.50);
  cell.query_p99_us = percentile(latencies_us, 0.99);
  cell.query_samples = latencies_us.size();
  cell.deterministic = true;
  for (const SessionId id : ids) {
    const QueryResult q = manager.query(id);
    if (q.snapshot->result.lub().weight() != offline_weight) {
      cell.deterministic = false;
    }
  }
  manager.stop();
  return cell;
}

}  // namespace

int main() {
  const bool full = bench::full_scale();
  const std::size_t rounds = full ? 64 : 16;  // GM-trace replays per session

  const Trace trace = bench::gm_trace(7);
  const std::uint64_t offline_weight = learn_heuristic(trace, 16).lub().weight();

  const std::vector<std::size_t> worker_counts = {1, 2, 4};
  const std::vector<std::size_t> session_counts = {1, 4, 8};

  std::ostringstream cells;
  bool first = true;
  bool all_deterministic = true;
  for (const std::size_t workers : worker_counts) {
    for (const std::size_t sessions : session_counts) {
      const Cell c = run_cell(trace, workers, sessions, rounds, offline_weight);
      all_deterministic = all_deterministic && c.deterministic;
      std::fprintf(stderr, "workers=%zu sessions=%zu: %.0f events/s, "
                   "query p50 %.1f us p99 %.1f us (%zu samples)%s\n",
                   c.workers, c.sessions, c.events_per_sec, c.query_p50_us,
                   c.query_p99_us, c.query_samples,
                   c.deterministic ? "" : "  ** NON-DETERMINISTIC **");
      cells << (first ? "" : ",\n")
            << "    {\"workers\": " << c.workers
            << ", \"sessions\": " << c.sessions
            << ", \"events\": " << c.events
            << ", \"ingest_ms\": " << c.ingest_ms
            << ", \"events_per_sec\": " << c.events_per_sec
            << ", \"query_p50_us\": " << c.query_p50_us
            << ", \"query_p99_us\": " << c.query_p99_us
            << ", \"query_samples\": " << c.query_samples
            << ", \"deterministic\": " << (c.deterministic ? "true" : "false")
            << "}";
      first = false;
    }
  }

  std::ostringstream doc;
  doc << "{\n"
      << "  \"bench\": \"serve\",\n"
      << "  \"trace\": {\"tasks\": " << trace.num_tasks()
      << ", \"periods\": " << trace.num_periods()
      << ", \"rounds_per_session\": " << rounds << "},\n"
      << "  \"offline_weight\": " << offline_weight << ",\n"
      << "  \"all_deterministic\": " << (all_deterministic ? "true" : "false")
      << ",\n"
      << "  \"cells\": [\n" << cells.str() << "\n  ]\n"
      << "}\n";

  std::printf("%s", doc.str().c_str());
  if (std::FILE* f = std::fopen("BENCH_serve.json", "w")) {
    std::fputs(doc.str().c_str(), f);
    std::fclose(f);
  }
  return all_deterministic ? 0 : 1;
}
